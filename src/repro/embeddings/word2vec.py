"""Word2vec skip-gram with negative sampling (SGNS), from scratch in numpy.

This is the paper's W2V-Chem model when trained on the chemistry corpus
(Section 2.3: a word2vec model trained from scratch on 7,201 ChEBI-linked
papers, initialised from random vectors).  The implementation follows
Mikolov et al. (2013): dynamic context windows, unigram^0.75 negative
sampling, and linearly decaying learning rate, with mini-batched numpy
updates instead of per-pair loops.

Pair generation is sharded (see :mod:`repro.embeddings.base`): the corpus is
split into fixed sentence-index shards whose pairs come from shard-local
RNGs, so shards can be built concurrently by the stage scheduler and merged
in shard order with byte-identical results regardless of job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.base import (
    StaticEmbeddings,
    build_pairs,
    negative_table,
    scatter_add,
    scatter_outer_add,
    sentences_to_ids,
    sigmoid,
)
from repro.text.vocab import Vocabulary, build_vocabulary
from repro.utils.rng import SeedLike, derive_rng

# Backwards-compatible aliases: these lived here before the shared kernels
# moved to embeddings.base.
_sigmoid = sigmoid
_negative_table = negative_table


@dataclass(frozen=True)
class Word2VecConfig:
    """SGNS hyperparameters.

    Attributes:
        dim: embedding dimensionality (the paper uses 300 for the static
            models; smaller defaults keep the offline benchmark fast).
        window: maximum context window; per-position windows are sampled
            uniformly in [1, window] as in the reference implementation.
        negative: negative samples per positive pair.
        epochs: passes over the pair stream.
        learning_rate: initial SGD step; decays linearly to 10% by the end.
        min_count: minimum corpus frequency for a token to enter the vocab.
        batch_size: pairs per vectorised update.
        seed: training seed.
    """

    dim: int = 64
    window: int = 4
    negative: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    min_count: int = 2
    batch_size: int = 1024
    seed: int = 0

    def __post_init__(self):
        if self.dim < 1 or self.window < 1 or self.negative < 1:
            raise ValueError("dim, window and negative must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class Word2Vec(StaticEmbeddings):
    """A trained SGNS embedding table."""

    @classmethod
    def train(
        cls,
        sentences: Sequence[Sequence[str]],
        config: Optional[Word2VecConfig] = None,
        name: str = "Word2Vec",
        pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shards: int = 1,
    ) -> "Word2Vec":
        """Train SGNS embeddings on tokenised ``sentences``.

        ``pairs`` may supply a precomputed ``(centers, contexts)`` stream
        (e.g. merged shard artifacts from the pipeline); otherwise the
        stream is built here across ``shards`` deterministic sentence-index
        shards.  The result depends on the shard *count*, never on how many
        processes built the shards.

        >>> model = Word2Vec.train([["acid", "base"] * 4] * 8,
        ...                        Word2VecConfig(dim=8, min_count=1, epochs=1))
        >>> model.vector("acid").shape
        (8,)
        """
        config = config or Word2VecConfig()
        vocabulary = build_vocabulary(sentences, min_count=config.min_count)
        rng = derive_rng(config.seed, "word2vec", name)

        vocab_size = len(vocabulary)
        w_in = (rng.random((vocab_size, config.dim)) - 0.5) / config.dim
        w_out = np.zeros((vocab_size, config.dim))
        cumulative = negative_table(vocabulary)

        if pairs is None:
            sentence_ids = sentences_to_ids(sentences, vocabulary)
            pairs = build_pairs(
                sentence_ids, config.window, config.seed, n_shards=shards
            )
        centers, contexts = pairs
        n_pairs = centers.size
        if n_pairs == 0:
            raise ValueError("corpus produced no training pairs; sentences too short")
        total_steps = config.epochs * n_pairs

        step = 0
        for _ in range(config.epochs):
            order = rng.permutation(n_pairs)
            # One negative draw + searchsorted per epoch; batches slice views.
            epoch_negs = np.searchsorted(
                cumulative, rng.random((n_pairs, config.negative))
            ).astype(np.int64)
            for start in range(0, n_pairs, config.batch_size):
                batch = order[start : start + config.batch_size]
                lr = config.learning_rate * max(
                    0.1, 1.0 - step / max(1, total_steps)
                )
                step += batch.size
                c_ids = centers[batch]
                o_ids = contexts[batch]
                neg_ids = epoch_negs[start : start + batch.size]

                center_vecs = w_in[c_ids]  # (B, d)
                pos_vecs = w_out[o_ids]  # (B, d)
                neg_vecs = w_out[neg_ids]  # (B, k, d)

                pos_grad = sigmoid(np.einsum("bd,bd->b", center_vecs, pos_vecs))
                pos_grad -= 1.0
                neg_grad = sigmoid(
                    np.einsum("bd,bkd->bk", center_vecs, neg_vecs)
                )

                grad_center = pos_grad[:, None] * pos_vecs
                grad_center += (neg_grad[:, None, :] @ neg_vecs)[:, 0, :]
                grad_center *= -lr
                scatter_add(w_in, c_ids, grad_center)

                # Output-side updates are coeff * center_vec per scattered
                # row; fold the positive and negative halves into one
                # rank-structured scatter.
                out_ids = np.concatenate([o_ids[:, None], neg_ids], axis=1)
                out_coeffs = np.concatenate([pos_grad[:, None], neg_grad], axis=1)
                scatter_outer_add(w_out, out_ids, out_coeffs, center_vecs, -lr)

        return cls(vocabulary, w_in, name=name, oov_seed=config.seed)


__all__ = ["Word2Vec", "Word2VecConfig"]
