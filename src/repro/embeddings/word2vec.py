"""Word2vec skip-gram with negative sampling (SGNS), from scratch in numpy.

This is the paper's W2V-Chem model when trained on the chemistry corpus
(Section 2.3: a word2vec model trained from scratch on 7,201 ChEBI-linked
papers, initialised from random vectors).  The implementation follows
Mikolov et al. (2013): dynamic context windows, unigram^0.75 negative
sampling, and linearly decaying learning rate, with mini-batched numpy
updates instead of per-pair loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.base import StaticEmbeddings
from repro.text.vocab import Vocabulary, build_vocabulary
from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class Word2VecConfig:
    """SGNS hyperparameters.

    Attributes:
        dim: embedding dimensionality (the paper uses 300 for the static
            models; smaller defaults keep the offline benchmark fast).
        window: maximum context window; per-position windows are sampled
            uniformly in [1, window] as in the reference implementation.
        negative: negative samples per positive pair.
        epochs: passes over the pair stream.
        learning_rate: initial SGD step; decays linearly to 10% by the end.
        min_count: minimum corpus frequency for a token to enter the vocab.
        batch_size: pairs per vectorised update.
        seed: training seed.
    """

    dim: int = 64
    window: int = 4
    negative: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    min_count: int = 2
    batch_size: int = 1024
    seed: int = 0

    def __post_init__(self):
        if self.dim < 1 or self.window < 1 or self.negative < 1:
            raise ValueError("dim, window and negative must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _pair_stream(
    sentence_ids: List[np.ndarray], window: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """All (center, context) id pairs with dynamic windows."""
    centers: List[int] = []
    contexts: List[int] = []
    for ids in sentence_ids:
        length = len(ids)
        if length < 2:
            continue
        spans = rng.integers(1, window + 1, size=length)
        for position in range(length):
            span = int(spans[position])
            lo = max(0, position - span)
            hi = min(length, position + span + 1)
            for other in range(lo, hi):
                if other == position:
                    continue
                centers.append(int(ids[position]))
                contexts.append(int(ids[other]))
    if not centers:
        raise ValueError("corpus produced no training pairs; sentences too short")
    return np.array(centers, dtype=np.int64), np.array(contexts, dtype=np.int64)


def _negative_table(vocabulary: Vocabulary) -> np.ndarray:
    """Cumulative unigram^0.75 distribution for negative sampling."""
    counts = np.array(
        [vocabulary.count(vocabulary.token_of(i)) for i in range(len(vocabulary))],
        dtype=np.float64,
    )
    weights = counts**0.75
    return np.cumsum(weights / weights.sum())


class Word2Vec(StaticEmbeddings):
    """A trained SGNS embedding table."""

    @classmethod
    def train(
        cls,
        sentences: Sequence[Sequence[str]],
        config: Optional[Word2VecConfig] = None,
        name: str = "Word2Vec",
    ) -> "Word2Vec":
        """Train SGNS embeddings on tokenised ``sentences``.

        >>> model = Word2Vec.train([["acid", "base"] * 4] * 8,
        ...                        Word2VecConfig(dim=8, min_count=1, epochs=1))
        >>> model.vector("acid").shape
        (8,)
        """
        config = config or Word2VecConfig()
        vocabulary = build_vocabulary(sentences, min_count=config.min_count)
        rng = derive_rng(config.seed, "word2vec", name)

        sentence_ids = []
        for sentence in sentences:
            ids = [vocabulary.get_id(t) for t in sentence]
            kept = np.array([i for i in ids if i is not None], dtype=np.int64)
            if kept.size:
                sentence_ids.append(kept)

        vocab_size = len(vocabulary)
        w_in = (rng.random((vocab_size, config.dim)) - 0.5) / config.dim
        w_out = np.zeros((vocab_size, config.dim))
        cumulative = _negative_table(vocabulary)

        centers, contexts = _pair_stream(sentence_ids, config.window, rng)
        n_pairs = centers.size
        total_steps = config.epochs * n_pairs

        step = 0
        for _ in range(config.epochs):
            order = rng.permutation(n_pairs)
            for start in range(0, n_pairs, config.batch_size):
                batch = order[start : start + config.batch_size]
                lr = config.learning_rate * max(
                    0.1, 1.0 - step / max(1, total_steps)
                )
                step += batch.size
                c_ids = centers[batch]
                o_ids = contexts[batch]
                neg_ids = np.searchsorted(
                    cumulative, rng.random((batch.size, config.negative))
                ).astype(np.int64)

                center_vecs = w_in[c_ids]  # (B, d)
                pos_vecs = w_out[o_ids]  # (B, d)
                neg_vecs = w_out[neg_ids]  # (B, k, d)

                pos_grad = _sigmoid(np.sum(center_vecs * pos_vecs, axis=1)) - 1.0
                neg_grad = _sigmoid(
                    np.einsum("bd,bkd->bk", center_vecs, neg_vecs)
                )

                grad_center = (
                    pos_grad[:, None] * pos_vecs
                    + np.einsum("bk,bkd->bd", neg_grad, neg_vecs)
                )
                grad_pos = pos_grad[:, None] * center_vecs
                grad_neg = neg_grad[..., None] * center_vecs[:, None, :]

                np.add.at(w_in, c_ids, -lr * grad_center)
                np.add.at(w_out, o_ids, -lr * grad_pos)
                np.add.at(
                    w_out,
                    neg_ids.reshape(-1),
                    -lr * grad_neg.reshape(-1, config.dim),
                )

        return cls(vocabulary, w_in, name=name, oov_seed=config.seed)


__all__ = ["Word2Vec", "Word2VecConfig"]
