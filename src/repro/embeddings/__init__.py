"""Embedding substrate: the paper's six embedding models, from scratch.

* :class:`RandomEmbeddings` — uniform random vectors per token (the paper's
  semantics-free baseline).
* :class:`Word2Vec` — skip-gram with negative sampling (W2V-Chem when trained
  on the chemistry corpus).
* :class:`GloVe` — co-occurrence factorisation with AdaGrad (GloVe generic,
  and GloVe-Chem when further trained on the chemistry corpus).
* :class:`FastText` — subword n-gram embeddings (the BioWordVec analogue).
* :class:`ContextualEmbeddings` — mini-BERT last-4-layer [CLS] vectors (the
  PubmedBERT-embedding analogue); defined in :mod:`repro.embeddings.contextual`.
"""

from repro.embeddings.base import EmbeddingModel, StaticEmbeddings
from repro.embeddings.fasttext import FastText, FastTextConfig
from repro.embeddings.glove import GloVe, GloVeConfig
from repro.embeddings.random import RandomEmbeddings
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig

__all__ = [
    "EmbeddingModel",
    "StaticEmbeddings",
    "RandomEmbeddings",
    "Word2Vec",
    "Word2VecConfig",
    "GloVe",
    "GloVeConfig",
    "FastText",
    "FastTextConfig",
]
