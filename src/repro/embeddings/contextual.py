"""Contextual (mini-BERT) embeddings — the PubmedBERT-embedding analogue.

The paper derives triple-component representations from PubmedBERT by
summing the last four hidden layers of the ``[CLS]`` token for each component
(Section 2.3).  Unlike the static models, the unit of representation is the
whole component *phrase*, not individual tokens; the feature pipeline in
:mod:`repro.ml.features` checks :attr:`EmbeddingModel.phrase_level` and
passes whole phrases accordingly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.bert.model import MiniBert
from repro.embeddings.base import EmbeddingModel
from repro.text.tokenizer import ChemTokenizer
from repro.text.vocab import Vocabulary


class ContextualEmbeddings(EmbeddingModel):
    """Phrase-level embeddings from a pretrained :class:`MiniBert`."""

    phrase_level = True

    def __init__(self, model: MiniBert, n_last_layers: int = 4,
                 name: str = "PubmedBERT", cache_size: int = 100_000):
        super().__init__(dim=model.config.d_model, name=name)
        self._model = model
        self._n_last_layers = n_last_layers
        self._tokenizer = ChemTokenizer()
        self._cache: Dict[str, np.ndarray] = {}
        self._cache_size = cache_size

    @property
    def model(self) -> MiniBert:
        return self._model

    @property
    def vocabulary(self) -> Optional[Vocabulary]:
        return None  # WordPiece is open-vocabulary via [UNK]

    def contains(self, token: str) -> bool:
        return True

    def _in_vocab_vector(self, phrase: str) -> np.ndarray:
        cached = self._cache.get(phrase)
        if cached is None:
            # Tokenise the way the WordPiece vocabulary was trained
            # (hyphenated chemical names would otherwise become [UNK]).
            words = self._tokenizer(phrase)
            if not words:
                return self.oov_vector(phrase)
            cached = self._model.cls_embedding(words, self._n_last_layers)
            if len(self._cache) < self._cache_size:
                self._cache[phrase] = cached
        return cached


__all__ = ["ContextualEmbeddings"]
