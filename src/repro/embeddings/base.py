"""Embedding model interface and shared out-of-vocabulary policy.

Every paradigm consumes embeddings through :meth:`EmbeddingModel.vector`.
The paper handles OOV tokens by substituting random vectors (Section 2.6);
here OOV vectors are *deterministic* per (model, token) so experiments are
reproducible while preserving the paper's behaviour (OOV vectors carry no
semantics but are stable features).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.text.vocab import Vocabulary
from repro.utils.rng import stable_hash


class EmbeddingModel(abc.ABC):
    """A token → fixed-dimension vector mapping with OOV fallback."""

    #: When True, the model represents whole phrases (e.g. a full entity
    #: name) rather than individual tokens; the ML feature pipeline passes
    #: each triple component as a single unit (see ContextualEmbeddings).
    phrase_level = False

    def __init__(self, dim: int, name: str, oov_seed: int = 0):
        if dim < 1:
            raise ValueError("embedding dimension must be positive")
        self._dim = dim
        self.name = name
        self._oov_seed = oov_seed
        self._oov_cache: Dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def oov_seed(self) -> int:
        """Seed of the deterministic OOV fallback (persisted with the model)."""
        return self._oov_seed

    @property
    @abc.abstractmethod
    def vocabulary(self) -> Optional[Vocabulary]:
        """The model's vocabulary, or ``None`` for open-vocabulary models."""

    @abc.abstractmethod
    def contains(self, token: str) -> bool:
        """True when the model has a learned representation for ``token``."""

    @abc.abstractmethod
    def _in_vocab_vector(self, token: str) -> np.ndarray:
        """Vector for a token known to be in-vocabulary."""

    def oov_vector(self, token: str) -> np.ndarray:
        """Deterministic uniform[-1, 1) fallback vector for an OOV token."""
        cached = self._oov_cache.get(token)
        if cached is None:
            rng = np.random.default_rng(
                stable_hash("oov", self.name, self._oov_seed, token)
            )
            cached = rng.uniform(-1.0, 1.0, size=self._dim)
            self._oov_cache[token] = cached
        return cached

    def vector(self, token: str) -> np.ndarray:
        """Vector for ``token``, falling back to :meth:`oov_vector`."""
        if self.contains(token):
            return self._in_vocab_vector(token)
        return self.oov_vector(token)

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Stack vectors for a token sequence into a ``(len, dim)`` matrix."""
        if not tokens:
            raise ValueError("cannot encode an empty token sequence")
        return np.stack([self.vector(token) for token in tokens])

    def mean_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Average of the token vectors (Algorithm 1's non-RNN path)."""
        return self.encode(tokens).mean(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, dim={self._dim})"


class StaticEmbeddings(EmbeddingModel):
    """A lookup-table embedding backed by a matrix and a vocabulary.

    Base class for the trained static models (word2vec, GloVe) and the
    random baseline; also usable directly to wrap externally trained vectors.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        matrix: np.ndarray,
        name: str,
        oov_seed: int = 0,
    ):
        if matrix.ndim != 2 or matrix.shape[0] != len(vocabulary):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        super().__init__(dim=matrix.shape[1], name=name, oov_seed=oov_seed)
        self._vocabulary = vocabulary
        self._matrix = matrix

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(vocab, dim)`` embedding table (read-only by convention)."""
        return self._matrix

    def contains(self, token: str) -> bool:
        return token in self._vocabulary

    def _in_vocab_vector(self, token: str) -> np.ndarray:
        return self._matrix[self._vocabulary.id_of(token)]


__all__ = ["EmbeddingModel", "StaticEmbeddings"]
