"""Embedding model interface, shared OOV policy, and shared training kernels.

Every paradigm consumes embeddings through :meth:`EmbeddingModel.vector`.
The paper handles OOV tokens by substituting random vectors (Section 2.6);
here OOV vectors are *deterministic* per (model, token) so experiments are
reproducible while preserving the paper's behaviour (OOV vectors carry no
semantics but are stable features).

The module also hosts the vectorised kernels shared by word2vec, GloVe and
fastText training: sentence → id filtering, sharded skip-gram pair
generation, the unigram^0.75 negative-sampling table, and a sorted
scatter-add.  Sharding is deterministic by sentence index: a shard's pairs
depend only on ``(seed, shard_index, n_shards)``, never on which process
computed them, so a parallel build is byte-identical to a sequential one.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.text.vocab import Vocabulary
from repro.utils.rng import SeedLike, derive_rng, stable_hash


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically clipped logistic function (shared by the SGNS trainers)."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def sentences_to_ids(
    sentences: Sequence[Sequence[str]], vocabulary: Vocabulary
) -> List[np.ndarray]:
    """Map sentences to in-vocabulary id arrays, dropping OOV tokens and
    empty results (the preprocessing step every embedding trainer shared)."""
    lookup = vocabulary.get_id
    sentence_ids: List[np.ndarray] = []
    for sentence in sentences:
        kept = [i for i in map(lookup, sentence) if i is not None]
        if kept:
            sentence_ids.append(np.array(kept, dtype=np.int64))
    return sentence_ids


def shard_bounds(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``(start, stop)`` shard boundaries.

    Boundaries depend only on ``(n_items, n_shards)`` — the fixed-shard
    contract that makes ``jobs=1`` and ``jobs=N`` builds byte-identical.
    Empty shards are allowed (tiny corpora with many shards).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    base, extra = divmod(n_items, n_shards)
    bounds = []
    start = 0
    for shard in range(n_shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _flatten_sentences(
    sentence_ids: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate sentences; returns ``(flat_ids, position, length)`` where
    ``position``/``length`` give each token's offset in, and the size of, its
    own sentence."""
    flat = np.concatenate(sentence_ids)
    lengths = np.fromiter(
        (ids.size for ids in sentence_ids), dtype=np.int64, count=len(sentence_ids)
    )
    starts = np.repeat(np.cumsum(lengths) - lengths, lengths)
    position = np.arange(flat.size, dtype=np.int64) - starts
    return flat, position, np.repeat(lengths, lengths)


def pair_shard(
    sentence_ids: Sequence[np.ndarray], window: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised skip-gram ``(center, context)`` pairs with dynamic windows.

    Each token draws a span uniformly from ``[1, window]`` (one vectorised
    draw over the whole shard); pairs are emitted per distance ``d`` —
    left-context then right-context — instead of per token, producing the
    same pair multiset as the historical per-token Python loop in a
    different order.
    """
    usable = [ids for ids in sentence_ids if ids.size >= 2]
    if not usable:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    flat, position, length = _flatten_sentences(usable)
    spans = rng.integers(1, window + 1, size=flat.size)
    centers: List[np.ndarray] = []
    contexts: List[np.ndarray] = []
    for distance in range(1, window + 1):
        active = spans >= distance
        left = np.nonzero(active & (position >= distance))[0]
        centers.append(flat[left])
        contexts.append(flat[left - distance])
        right = np.nonzero(active & (position + distance < length))[0]
        centers.append(flat[right])
        contexts.append(flat[right + distance])
    return np.concatenate(centers), np.concatenate(contexts)


def pair_shard_arrays(
    sentence_ids: Sequence[np.ndarray],
    window: int,
    seed: SeedLike,
    shard_index: int,
    n_shards: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pairs for one shard of the corpus, from a shard-local RNG.

    ``sentence_ids`` is the *full* corpus; the shard slice is taken here so
    every caller (in-process or a pool worker) agrees on the boundaries.
    """
    start, stop = shard_bounds(len(sentence_ids), n_shards)[shard_index]
    rng = derive_rng(seed, "sgns-pairs", shard_index, n_shards)
    return pair_shard(sentence_ids[start:stop], window, rng)


def build_pairs(
    sentence_ids: Sequence[np.ndarray],
    window: int,
    seed: SeedLike,
    n_shards: int = 1,
    precomputed: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Full ``(centers, contexts)`` stream: shard results merged in shard
    order.  ``precomputed`` supplies already-built per-shard arrays (e.g.
    loaded from the artifact store); shapes are trusted, order is not —
    shards are always concatenated by index."""
    if precomputed is None:
        precomputed = [
            pair_shard_arrays(sentence_ids, window, seed, shard, n_shards)
            for shard in range(n_shards)
        ]
    centers = np.concatenate([pair[0] for pair in precomputed])
    contexts = np.concatenate([pair[1] for pair in precomputed])
    if centers.size == 0:
        raise ValueError("corpus produced no training pairs; sentences too short")
    return centers, contexts


def negative_table(vocabulary: Vocabulary) -> np.ndarray:
    """Cumulative unigram^0.75 distribution for negative sampling.

    ``Vocabulary.counts()`` is insertion-ordered by dense id, so one
    ``fromiter`` over its values replaces the per-token lookup loop
    bit-identically.
    """
    counts = np.fromiter(
        vocabulary.counts().values(), dtype=np.float64, count=len(vocabulary)
    )
    weights = counts**0.75
    return np.cumsum(weights / weights.sum())


#: Tables at most this many elements are scattered through a dense bincount
#: (one transient table-sized buffer) instead of sort + reduceat; the dense
#: path skips the argsort and the gather copy entirely.  2^18 float64s is a
#: 2 MB transient — cheap next to the sort it replaces.
DENSE_SCATTER_MAX = 1 << 18


def scatter_add(table: np.ndarray, ids: np.ndarray, updates: np.ndarray) -> None:
    """``table[ids] += updates`` with duplicate ids, fully vectorised.

    Replaces ``np.add.at`` (whose sequential inner loop dominated the SGNS
    profile).  Small tables accumulate through ``np.bincount`` over flattened
    ``(id, column)`` codes; large ones sort the ids and pre-sum duplicates
    with ``np.add.reduceat``.  Both change the floating-point accumulation
    order relative to ``np.add.at`` — callers that persist goldens must
    re-golden when switching (see EXPERIMENTS.md).  The strategy choice
    depends only on ``table.size``, so results stay deterministic for a
    given table shape.
    """
    ids = ids.reshape(-1)
    if ids.size == 0:
        return
    updates = updates.reshape(ids.size, -1) if table.ndim == 2 else updates.reshape(-1)
    if table.size <= DENSE_SCATTER_MAX:
        if table.ndim == 2:
            dim = table.shape[1]
            codes = (ids[:, None] * dim + np.arange(dim)[None, :]).reshape(-1)
            weights = updates.reshape(-1)
        else:
            codes = ids
            weights = updates
        table += np.bincount(codes, weights=weights, minlength=table.size).reshape(
            table.shape
        )
        return
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    starts = np.concatenate(
        [[0], np.nonzero(np.diff(sorted_ids))[0] + 1]
    )
    sums = np.add.reduceat(updates[order], starts, axis=0)
    table[sorted_ids[starts]] += sums


def scatter_outer_add(
    table: np.ndarray,
    ids: np.ndarray,
    coeffs: np.ndarray,
    vectors: np.ndarray,
    scale: float = 1.0,
) -> None:
    """``table[ids[b, j]] += scale * coeffs[b, j] * vectors[b]`` for all b, j.

    The SGNS output-side updates are rank-structured: every scattered row is
    a scalar multiple of its batch element's centre vector.  Instead of
    materialising the ``(batch, k, dim)`` outer product and sorting it, the
    coefficients are accumulated into a ``(rows, batch)`` mixing matrix with
    one ``np.bincount`` and applied with a single matmul — ~6x faster at
    benchmark sizes.  Falls back to :func:`scatter_add` on the materialised
    outer product when the mixing matrix would be large; the choice depends
    only on shapes, so results are deterministic per configuration.
    """
    batch = vectors.shape[0]
    ids = ids.reshape(batch, -1)
    coeffs = coeffs.reshape(batch, -1)
    n_rows = table.shape[0]
    if n_rows * batch <= DENSE_SCATTER_MAX:
        codes = (ids * batch + np.arange(batch)[:, None]).reshape(-1)
        if scale != 1.0:
            coeffs = coeffs * scale
        mixing = np.bincount(
            codes, weights=coeffs.reshape(-1), minlength=n_rows * batch
        ).reshape(n_rows, batch)
        table += mixing @ vectors
        return
    updates = coeffs[..., None] * vectors[:, None, :]
    if scale != 1.0:
        updates *= scale
    scatter_add(table, ids, updates)


class EmbeddingModel(abc.ABC):
    """A token → fixed-dimension vector mapping with OOV fallback."""

    #: When True, the model represents whole phrases (e.g. a full entity
    #: name) rather than individual tokens; the ML feature pipeline passes
    #: each triple component as a single unit (see ContextualEmbeddings).
    phrase_level = False

    def __init__(self, dim: int, name: str, oov_seed: int = 0):
        if dim < 1:
            raise ValueError("embedding dimension must be positive")
        self._dim = dim
        self.name = name
        self._oov_seed = oov_seed
        self._oov_cache: Dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def oov_seed(self) -> int:
        """Seed of the deterministic OOV fallback (persisted with the model)."""
        return self._oov_seed

    @property
    @abc.abstractmethod
    def vocabulary(self) -> Optional[Vocabulary]:
        """The model's vocabulary, or ``None`` for open-vocabulary models."""

    @abc.abstractmethod
    def contains(self, token: str) -> bool:
        """True when the model has a learned representation for ``token``."""

    @abc.abstractmethod
    def _in_vocab_vector(self, token: str) -> np.ndarray:
        """Vector for a token known to be in-vocabulary."""

    def oov_vector(self, token: str) -> np.ndarray:
        """Deterministic uniform[-1, 1) fallback vector for an OOV token."""
        cached = self._oov_cache.get(token)
        if cached is None:
            rng = np.random.default_rng(
                stable_hash("oov", self.name, self._oov_seed, token)
            )
            cached = rng.uniform(-1.0, 1.0, size=self._dim)
            self._oov_cache[token] = cached
        return cached

    def vector(self, token: str) -> np.ndarray:
        """Vector for ``token``, falling back to :meth:`oov_vector`."""
        if self.contains(token):
            return self._in_vocab_vector(token)
        return self.oov_vector(token)

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Stack vectors for a token sequence into a ``(len, dim)`` matrix."""
        if not tokens:
            raise ValueError("cannot encode an empty token sequence")
        return np.stack([self.vector(token) for token in tokens])

    def mean_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Average of the token vectors (Algorithm 1's non-RNN path)."""
        return self.encode(tokens).mean(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, dim={self._dim})"


class StaticEmbeddings(EmbeddingModel):
    """A lookup-table embedding backed by a matrix and a vocabulary.

    Base class for the trained static models (word2vec, GloVe) and the
    random baseline; also usable directly to wrap externally trained vectors.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        matrix: np.ndarray,
        name: str,
        oov_seed: int = 0,
    ):
        if matrix.ndim != 2 or matrix.shape[0] != len(vocabulary):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        super().__init__(dim=matrix.shape[1], name=name, oov_seed=oov_seed)
        self._vocabulary = vocabulary
        self._matrix = matrix

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(vocab, dim)`` embedding table (read-only by convention)."""
        return self._matrix

    def contains(self, token: str) -> bool:
        return token in self._vocabulary

    def _in_vocab_vector(self, token: str) -> np.ndarray:
        return self._matrix[self._vocabulary.id_of(token)]


__all__ = [
    "EmbeddingModel",
    "StaticEmbeddings",
    "sigmoid",
    "sentences_to_ids",
    "shard_bounds",
    "pair_shard",
    "pair_shard_arrays",
    "build_pairs",
    "negative_table",
    "scatter_add",
    "scatter_outer_add",
    "DENSE_SCATTER_MAX",
]
