"""Tests for the span tracer (repro.obs.trace)."""

import threading

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    configure_from_env,
    env_enables_trace,
    get_tracer,
    span,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    """Isolate each test from the process-wide tracer state."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    trace.reset()
    yield
    tracer.enabled = was_enabled
    trace.reset()


class TestDisabledPath:
    def test_disabled_by_default_returns_null_span(self):
        get_tracer().enabled = False
        assert span("anything") is NULL_SPAN

    def test_null_span_absorbs_all_calls(self):
        get_tracer().enabled = False
        with span("nope") as sp:
            sp.incr("steps", 5)
            sp.gauge("loss", 1.0)
            sp.annotate(model="x")
        assert get_tracer().roots() == []
        assert get_tracer().counters() == {}

    def test_disabled_global_count_is_noop(self):
        tracer = get_tracer()
        tracer.enabled = False
        tracer.count("calls")
        assert tracer.counters() == {}


class TestNesting:
    def test_nested_spans_form_a_tree(self):
        trace.enable()
        with span("outer"):
            with span("middle"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        roots = get_tracer().roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]

    def test_durations_are_positive_and_self_time_bounded(self):
        trace.enable()
        with span("outer"):
            with span("inner"):
                sum(range(1000))
        outer = get_tracer().roots()[0]
        assert outer.duration > 0
        assert outer.children[0].duration > 0
        assert 0 <= outer.self_time <= outer.duration

    def test_sequential_roots_accumulate(self):
        trace.enable()
        with span("a"):
            pass
        with span("b"):
            pass
        assert [r.name for r in get_tracer().roots()] == ["a", "b"]


class TestCountersAndAttrs:
    def test_span_counters_aggregate_into_tracer(self):
        trace.enable()
        with span("stage") as sp:
            sp.incr("steps")
            sp.incr("steps", 4)
        with span("stage") as sp:
            sp.incr("steps", 5)
        assert get_tracer().counters() == {"stage.steps": 10}

    def test_gauges_and_attrs_in_to_dict(self):
        trace.enable()
        with span("stage", model="W2V") as sp:
            sp.gauge("loss", 0.5)
            sp.annotate(task=1)
        node = get_tracer().roots()[0].to_dict()
        assert node["attrs"] == {"model": "W2V", "task": 1}
        assert node["gauges"] == {"loss": 0.5}
        assert node["duration_s"] >= node["self_time_s"] >= 0

    def test_non_jsonable_attrs_stringified(self):
        trace.enable()
        with span("stage", obj=object()):
            pass
        node = get_tracer().roots()[0].to_dict()
        assert isinstance(node["attrs"]["obj"], str)

    def test_global_counter(self):
        trace.enable()
        tracer = get_tracer()
        tracer.count("api.calls")
        tracer.count("api.calls", 2)
        assert tracer.counters()["api.calls"] == 3


class TestEnvToggle:
    def test_env_enables_trace_truthiness(self):
        assert env_enables_trace({}) is False
        assert env_enables_trace({"REPRO_TRACE": "1"}) is True
        assert env_enables_trace({"REPRO_TRACE": "yes"}) is True
        for falsy in ("", "0", "false", "no", "off", "False", "OFF"):
            assert env_enables_trace({"REPRO_TRACE": falsy}) is False

    def test_configure_from_env_flips_global_state(self):
        assert configure_from_env({"REPRO_TRACE": "1"}) is True
        assert trace.enabled() is True
        assert configure_from_env({}) is False
        assert trace.enabled() is False

    def test_env_toggle_controls_span_recording(self):
        configure_from_env({"REPRO_TRACE": "1"})
        with span("recorded"):
            pass
        configure_from_env({"REPRO_TRACE": "0"})
        with span("dropped"):
            pass
        assert [r.name for r in get_tracer().roots()] == ["recorded"]


class TestThreadSafety:
    def test_threads_keep_independent_stacks(self):
        trace.enable()
        barrier = threading.Barrier(2)

        def work(label):
            with span(f"root.{label}") as sp:
                barrier.wait(timeout=5)
                with span(f"child.{label}"):
                    sp.incr("items")

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = get_tracer().roots()
        assert sorted(r.name for r in roots) == ["root.0", "root.1"]
        for root in roots:
            label = root.name.split(".")[1]
            assert [c.name for c in root.children] == [f"child.{label}"]

    def test_concurrent_counter_updates(self):
        tracer = Tracer(enabled=True)

        def bump():
            for _ in range(500):
                tracer.count("hits")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.counters()["hits"] == 2000


class TestReset:
    def test_reset_clears_spans_and_counters_not_enabled(self):
        trace.enable()
        with span("x") as sp:
            sp.incr("n")
        trace.reset()
        assert get_tracer().roots() == []
        assert get_tracer().counters() == {}
        assert trace.enabled() is True


class TestListeners:
    def test_listener_sees_start_and_end(self):
        trace.enable()
        events = []

        class Recorder:
            def on_span_start(self, sp):
                events.append(("start", sp.name))

            def on_span_end(self, sp):
                events.append(("end", sp.name, sp.duration))

        recorder = Recorder()
        get_tracer().add_listener(recorder)
        try:
            with span("observed"):
                pass
        finally:
            get_tracer().remove_listener(recorder)
        assert events[0] == ("start", "observed")
        assert events[1][:2] == ("end", "observed")
        assert events[1][2] > 0  # duration already final at on_span_end

    def test_end_fires_while_span_still_on_stack(self):
        trace.enable()
        seen = []

        class StackChecker:
            def on_span_end(self, sp):
                seen.append(get_tracer().current_span() is sp)

        checker = StackChecker()
        get_tracer().add_listener(checker)
        try:
            with span("gaugeable"):
                pass
        finally:
            get_tracer().remove_listener(checker)
        assert seen == [True]

    def test_partial_listeners_allowed(self):
        trace.enable()
        ends = []

        class EndOnly:
            def on_span_end(self, sp):
                ends.append(sp.name)

        listener = EndOnly()
        get_tracer().add_listener(listener)
        try:
            with span("half"):
                pass
        finally:
            get_tracer().remove_listener(listener)
        assert ends == ["half"]

    def test_broken_listener_swallowed_and_counted(self):
        trace.enable()

        class Broken:
            def on_span_start(self, sp):
                raise RuntimeError("listener exploded")

        listener = Broken()
        get_tracer().add_listener(listener)
        try:
            with span("sturdy"):
                pass  # must not raise
        finally:
            get_tracer().remove_listener(listener)
        assert get_tracer().counters()["trace.listener_errors"] >= 1

    def test_add_listener_idempotent(self):
        trace.enable()
        calls = []

        class Counterer:
            def on_span_start(self, sp):
                calls.append(sp.name)

        listener = Counterer()
        get_tracer().add_listener(listener)
        get_tracer().add_listener(listener)  # second add is a no-op
        try:
            with span("once"):
                pass
        finally:
            get_tracer().remove_listener(listener)
        assert calls == ["once"]


class TestAdopt:
    def test_adopt_attributes_worker_spans_to_parent(self):
        trace.enable()

        with span("parent") as parent:
            def work():
                with trace.adopt(parent):
                    with span("worker.child"):
                        pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        roots = get_tracer().roots()
        assert [r.name for r in roots] == ["parent"]
        assert [c.name for c in roots[0].children] == ["worker.child"]

    def test_without_adopt_worker_spans_become_roots(self):
        trace.enable()

        with span("parent"):
            def work():
                with span("worker.orphan"):
                    pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert sorted(r.name for r in get_tracer().roots()) == [
            "parent", "worker.orphan",
        ]

    def test_adopt_does_not_retime_parent(self):
        trace.enable()
        with span("parent") as parent:
            pass
        duration = parent.duration
        with trace.adopt(parent):
            with span("late.child"):
                pass
        assert parent.duration == duration

    def test_adopt_none_is_noop(self):
        trace.enable()
        with trace.adopt(None):
            with span("free"):
                pass
        assert [r.name for r in get_tracer().roots()] == ["free"]

    def test_adopt_null_span_is_noop(self):
        trace.enable()
        with trace.adopt(NULL_SPAN):
            with span("free"):
                pass
        assert [r.name for r in get_tracer().roots()] == ["free"]

    def test_many_workers_adopt_one_parent(self):
        trace.enable()
        with span("parent") as parent:
            def work(i):
                with trace.adopt(parent):
                    with span(f"child.{i}"):
                        pass

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        roots = get_tracer().roots()
        assert [r.name for r in roots] == ["parent"]
        assert sorted(c.name for c in roots[0].children) == [
            f"child.{i}" for i in range(8)
        ]
