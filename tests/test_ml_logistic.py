"""Tests for the logistic-regression baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.logistic import LogisticRegression, LogisticRegressionConfig


def linear_task(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    y = ((x[:, 0] - 0.5 * x[:, 1]) > 0).astype(np.int64)
    return x, y


class TestLogisticRegression:
    def test_learns_linear_boundary(self):
        x, y = linear_task()
        x_test, y_test = linear_task(seed=1)
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x_test) == y_test).mean() > 0.95

    def test_probabilities_valid(self):
        x, y = linear_task(100)
        model = LogisticRegression().fit(x, y)
        probs = model.predict_proba(x)
        assert np.all((probs >= 0) & (probs <= 1))
        assert np.array_equal(model.predict(x), (probs >= 0.5).astype(np.int64))

    def test_handles_constant_features(self):
        rng = np.random.default_rng(0)
        x = np.hstack([rng.normal(size=(80, 2)), np.ones((80, 1))])
        y = (x[:, 0] > 0).astype(np.int64)
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_early_stopping(self):
        x, y = linear_task(100)
        model = LogisticRegression(
            LogisticRegressionConfig(epochs=10_000, tol=1e-3)
        ).fit(x, y)
        assert model.n_iterations_ < 10_000

    def test_l2_shrinks_weights(self):
        x, y = linear_task(150)
        free = LogisticRegression(LogisticRegressionConfig(l2=0.0)).fit(x, y)
        ridge = LogisticRegression(LogisticRegressionConfig(l2=1.0)).fit(x, y)
        assert np.linalg.norm(ridge.weights) < np.linalg.norm(free.weights)

    def test_input_validation(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)), np.array([0, 5]))
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 2)))

    def test_dimension_check_at_predict(self):
        x, y = linear_task(60)
        model = LogisticRegression().fit(x, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 9)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LogisticRegressionConfig(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegressionConfig(l2=-1)

    def test_drops_into_grid_search(self):
        from repro.ml.grid_search import grid_search

        x, y = linear_task(120)
        result = grid_search(
            lambda p: LogisticRegression(
                LogisticRegressionConfig(l2=p["l2"], epochs=100)
            ),
            {"l2": [1e-3, 10.0]},
            x,
            y,
            n_folds=3,
        )
        assert result.best_params["l2"] == 1e-3

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_training_beats_majority_class(self, seed):
        x, y = linear_task(80, seed)
        if y.min() == y.max():
            return
        model = LogisticRegression(LogisticRegressionConfig(epochs=150)).fit(x, y)
        accuracy = (model.predict(x) == y).mean()
        assert accuracy >= max(y.mean(), 1 - y.mean()) - 0.05
