"""Tests for DBSCAN, the naive filter, Algorithm 2 and the token analyses."""

import numpy as np
import pytest

from repro.adaptation.analysis import (
    component_attention,
    short_token_share,
    token_frequency_census,
)
from repro.adaptation.dbscan import NOISE, dbscan, estimate_eps, pairwise_distances
from repro.adaptation.naive import naive_token_filter
from repro.adaptation.task_oriented import (
    TaskOrientedConfig,
    head_tail_token_frequencies,
    select_stop_tokens,
    stopword_filter,
)
from repro.core.tasks import positive_triples
from repro.embeddings.random import RandomEmbeddings
from repro.ml.forest import RandomForest, RandomForestConfig


class TestNaiveFilter:
    def test_drops_short_tokens(self):
        flt = naive_token_filter()
        assert flt(["3", "hydroxy", "acid", "d"]) == ["hydroxy", "acid"]

    def test_keeps_all_when_all_short(self):
        assert naive_token_filter()(["2", "d"]) == ["2", "d"]

    def test_custom_length(self):
        assert naive_token_filter(5)(["acid", "hydroxy"]) == ["hydroxy"]

    def test_validation(self):
        with pytest.raises(ValueError):
            naive_token_filter(0)


class TestPairwiseDistances:
    def test_symmetry_and_zero_diagonal(self):
        points = np.random.default_rng(0).normal(size=(10, 3))
        distances = pairwise_distances(points)
        assert np.allclose(distances, distances.T)
        assert np.allclose(np.diag(distances), 0.0)

    def test_known_values(self):
        distances = pairwise_distances(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert distances[0, 1] == pytest.approx(5.0)


class TestDBSCAN:
    def two_blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(20, 2))
        b = rng.normal(5.0, 0.1, size=(20, 2))
        return np.vstack([a, b])

    def test_finds_two_clusters(self):
        labels = dbscan(self.two_blobs(), eps=0.5, min_samples=4)
        assert set(labels[:20]) == {0}
        assert set(labels[20:]) == {1}

    def test_outlier_is_noise(self):
        points = np.vstack([self.two_blobs(), [[100.0, 100.0]]])
        labels = dbscan(points, eps=0.5, min_samples=4)
        assert labels[-1] == NOISE

    def test_automatic_eps(self):
        labels = dbscan(self.two_blobs(), eps=None, min_samples=4)
        assert len(set(labels) - {NOISE}) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            dbscan(np.zeros((5, 2)), eps=-1.0)
        with pytest.raises(ValueError):
            dbscan(np.zeros((5, 2)), eps=1.0, min_samples=0)

    def test_estimate_eps_positive(self):
        assert estimate_eps(self.two_blobs(), k=3) > 0.0


class TestTaskOrientedAdaptation:
    def test_token_frequencies(self, ontology):
        positives = positive_triples(ontology)
        counter = head_tail_token_frequencies(positives)
        assert counter
        # locants are frequent in a ChEBI-like ontology
        assert any(token.isdigit() for token, _ in counter.most_common(20))

    def test_select_stop_tokens_runs(self, ontology):
        positives = positive_triples(ontology)[:300]
        embeddings = RandomEmbeddings(dim=16, seed=0)
        stop = select_stop_tokens(
            positives,
            embeddings,
            TaskOrientedConfig(n_entities=40, n_iterations=3, seed=0),
        )
        assert isinstance(stop, set)

    def test_deterministic(self, ontology):
        positives = positive_triples(ontology)[:200]
        embeddings = RandomEmbeddings(dim=16, seed=0)
        config = TaskOrientedConfig(n_entities=30, n_iterations=3, seed=1)
        assert select_stop_tokens(positives, embeddings, config) == select_stop_tokens(
            positives, embeddings, config
        )

    def test_phrase_level_rejected(self, lab, ontology):
        positives = positive_triples(ontology)[:50]
        with pytest.raises(ValueError, match="token-level"):
            select_stop_tokens(positives, lab.embedding("PubmedBERT"))

    def test_stopword_filter(self):
        flt = stopword_filter({"2", "3"})
        assert flt(["2", "acid"]) == ["acid"]
        assert flt(["2", "3"]) == ["2", "3"]  # never empty a component

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TaskOrientedConfig(top_fraction=0.0)
        with pytest.raises(ValueError):
            TaskOrientedConfig(n_iterations=1)


class TestAnalysis:
    def test_census_shape(self, ontology):
        positives = positive_triples(ontology)
        census = token_frequency_census(positives, top_k=10)
        assert set(census) == {"head", "tail"}
        assert len(census["head"]) == 10
        counts = [c for _, c in census["head"]]
        assert counts == sorted(counts, reverse=True)

    def test_short_token_share_pathology(self, ontology):
        """Heads carry more short-token mass than tails (Table A5)."""
        census = token_frequency_census(positive_triples(ontology), top_k=50)
        shares = short_token_share(census)
        assert shares["head"] > shares["tail"]

    def test_component_attention_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(150, 12))
        y = (x[:, 0] > 0).astype(np.int64)
        forest = RandomForest(RandomForestConfig(n_estimators=5, seed=0)).fit(x, y)
        attention = component_attention(forest, dim=4)
        assert set(attention) == {"subject", "relation", "object"}
        assert sum(attention.values()) == pytest.approx(1.0)
        assert attention["subject"] > attention["object"]

    def test_census_requires_positives(self):
        with pytest.raises(ValueError):
            token_frequency_census([])


class TestAlgorithm2FindsClusteredTokens:
    """Craft an embedding where locant tokens form one tight cluster: the
    task-oriented adaptation must identify exactly those as stop words."""

    def _embedding(self):
        import numpy as np

        from repro.embeddings.base import StaticEmbeddings
        from repro.text.vocab import Vocabulary

        rng = np.random.default_rng(0)
        locants = [str(i) for i in range(1, 10)]
        words = ["acid", "amino", "hydroxy", "metabolite", "phenyl",
                 "chloro", "oxo", "benzyl"]
        counts = {t: 100 for t in locants}
        counts.update({t: 50 for t in words})
        vocab = Vocabulary(counts)
        dim = 10
        matrix = np.zeros((len(vocab), dim))
        anchor = np.zeros(dim)
        anchor[0] = 5.0
        for token in locants:
            matrix[vocab.id_of(token)] = anchor + rng.normal(0, 0.01, dim)
        for index, token in enumerate(words):
            direction = np.zeros(dim)
            direction[index + 1] = 4.0  # axes disjoint from the locant anchor
            matrix[vocab.id_of(token)] = direction + rng.normal(0, 0.01, dim)
        return StaticEmbeddings(vocab, matrix, name="crafted"), locants, words

    def test_locant_cluster_becomes_stop_words(self, ontology):
        from repro.adaptation.task_oriented import (
            TaskOrientedConfig,
            select_stop_tokens,
        )
        from repro.core.tasks import positive_triples

        embeddings, locants, words = self._embedding()
        positives = positive_triples(ontology)[:400]
        stop = select_stop_tokens(
            positives,
            embeddings,
            TaskOrientedConfig(
                top_fraction=1.0, n_entities=100, n_iterations=10,
                min_samples=3, seed=0,
            ),
        )
        found_locants = stop & set(locants)
        assert len(found_locants) >= 5, f"expected locant stop words, got {stop}"
