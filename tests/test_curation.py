"""Tests for the curation-assistant triage API."""

import numpy as np
import pytest

from repro.core.triples import LabeledTriple
from repro.curation import CurationAssistant, Decision, TriageSummary
from repro.ontology.relations import IS_A


class _FixedScorer:
    """Returns a preconfigured probability per triple (by position)."""

    def __init__(self, probabilities):
        self._probabilities = list(probabilities)

    def predict_proba(self, triples):
        return np.array(self._probabilities[: len(triples)])


def make_triples(labels):
    return [
        LabeledTriple(f"s{i}", f"subject {i}", IS_A, f"o{i}", f"object {i}", label)
        for i, label in enumerate(labels)
    ]


class TestCurationAssistant:
    def test_triage_buckets(self):
        triples = make_triples([1, 0, 1, 0])
        scorer = _FixedScorer([0.9, 0.1, 0.5, 0.4])
        summary = CurationAssistant(scorer).triage(triples)
        decisions = [r.decision for r in summary.results]
        assert decisions == [
            Decision.ACCEPT, Decision.REJECT, Decision.REVIEW, Decision.REVIEW,
        ]
        assert summary.counts() == {"accept": 1, "reject": 1, "review": 2}

    def test_automation_and_error_rates(self):
        triples = make_triples([1, 0, 0, 1])
        # accept(correct), reject(correct), accept(WRONG), review
        scorer = _FixedScorer([0.9, 0.1, 0.9, 0.5])
        summary = CurationAssistant(scorer).triage(triples)
        assert summary.automation_rate == pytest.approx(0.75)
        assert summary.automated_error_rate() == pytest.approx(1 / 3)

    def test_band_boundaries_inclusive(self):
        triples = make_triples([1, 0])
        scorer = _FixedScorer([0.65, 0.35])
        summary = CurationAssistant(scorer).triage(triples)
        assert summary.results[0].decision is Decision.ACCEPT
        assert summary.results[1].decision is Decision.REJECT

    def test_validation(self):
        with pytest.raises(TypeError):
            CurationAssistant(object())
        with pytest.raises(ValueError):
            CurationAssistant(_FixedScorer([]), reject_below=0.7, accept_above=0.3)
        with pytest.raises(ValueError):
            CurationAssistant(_FixedScorer([])).triage([])

    def test_calibrate_band_meets_error_target(self):
        # probabilities correlate with labels but the mid range is noisy
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=400)
        probabilities = np.clip(
            labels * 0.8 + 0.1 + rng.normal(0, 0.15, 400), 0, 1
        )
        triples = make_triples(labels.tolist())
        assistant = CurationAssistant(_FixedScorer(probabilities.tolist()))
        reject_below, accept_above = assistant.calibrate_band(
            triples, max_error_rate=0.02
        )
        assert reject_below <= accept_above
        summary = assistant.triage(triples)
        assert summary.automated_error_rate() <= 0.02 + 1e-9

    def test_calibrate_band_widens_until_nothing_is_automated(self):
        # anti-correlated scores: the only way to hit a 1% error rate is to
        # route (almost) everything to review.
        triples = make_triples([1, 0] * 50)
        probabilities = [0.05, 0.95] * 50
        assistant = CurationAssistant(_FixedScorer(probabilities))
        reject_below, accept_above = assistant.calibrate_band(
            triples, max_error_rate=0.01
        )
        assert accept_above - reject_below > 0.85
        summary = assistant.triage(triples)
        assert summary.automation_rate == 0.0

    def test_works_with_real_paradigm(self, lab):
        from repro.core.paradigms import RandomForestParadigm
        from repro.ml.forest import RandomForestConfig

        split = lab.ml_split(1)
        paradigm = RandomForestParadigm(
            lab.embedding("Random"),
            config=RandomForestConfig(n_estimators=5, seed=0),
        ).fit(list(split.train)[:300])
        assistant = CurationAssistant(paradigm)
        summary = assistant.triage(list(split.test)[:50])
        assert len(summary.results) == 50
        assert 0.0 <= summary.automation_rate <= 1.0
