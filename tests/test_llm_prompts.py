"""Tests for prompt rendering and parsing helpers."""

import pytest

from repro.core.triples import LabeledTriple
from repro.llm.prompts import (
    ABSTAIN_SENTENCE,
    INSTRUCTION,
    PromptVariant,
    example_order_signature,
    extract_query_text,
    format_example,
    render_prompt,
)
from repro.ontology.relations import IS_A


def triples(n, label, prefix):
    return [
        LabeledTriple(f"{prefix}{i}", f"{prefix} entity {i}", IS_A,
                      f"{prefix}o{i}", f"{prefix} class {i}", label)
        for i in range(n)
    ]


POS = triples(3, 1, "p")
NEG = triples(3, 0, "n")
QUERY = LabeledTriple("q", "query entity", IS_A, "qo", "query class", 1)


class TestRenderPrompt:
    def test_base_prompt_structure(self):
        prompt = render_prompt(POS, NEG, QUERY, PromptVariant.BASE)
        assert prompt.startswith(INSTRUCTION)
        assert ABSTAIN_SENTENCE not in prompt
        assert prompt.count("<triple>:") == 7
        assert prompt.count("<classification>:") == 7
        assert prompt.rstrip().endswith("<classification>:")

    def test_base_ordering_positives_first(self):
        prompt = render_prompt(POS, NEG, QUERY, PromptVariant.BASE)
        assert example_order_signature(prompt) == [True] * 3 + [False] * 3

    def test_abstain_variant_adds_sentence(self):
        prompt = render_prompt(POS, NEG, QUERY, PromptVariant.ABSTAIN)
        assert ABSTAIN_SENTENCE in prompt

    def test_shuffled_variant_reorders(self):
        prompt = render_prompt(POS, NEG, QUERY, PromptVariant.SHUFFLED, seed=5)
        signature = example_order_signature(prompt)
        assert sorted(signature) == [False] * 3 + [True] * 3
        assert signature != [True] * 3 + [False] * 3

    def test_shuffled_deterministic_per_seed(self):
        a = render_prompt(POS, NEG, QUERY, PromptVariant.SHUFFLED, seed=5)
        b = render_prompt(POS, NEG, QUERY, PromptVariant.SHUFFLED, seed=5)
        assert a == b

    def test_requires_examples(self):
        with pytest.raises(ValueError):
            render_prompt([], NEG, QUERY)

    def test_query_last(self):
        prompt = render_prompt(POS, NEG, QUERY)
        assert extract_query_text(prompt) == QUERY.as_text()


class TestHelpers:
    def test_format_example(self):
        block = format_example(POS[0], True)
        assert block.endswith("True")
        assert POS[0].as_text() in block

    def test_extract_query_requires_marker(self):
        with pytest.raises(ValueError):
            extract_query_text("no markers here")

    def test_signature_ignores_trailing_empty_classification(self):
        prompt = render_prompt(POS, NEG, QUERY)
        # the final "<classification>:" (empty) is not a label
        assert len(example_order_signature(prompt)) == 6
