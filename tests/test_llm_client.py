"""Tests for the chat-client interface (offline paths only)."""

import json
import urllib.error

import pytest

from repro.llm.client import (
    RETRYABLE_STATUSES,
    ChatClient,
    ChatClientError,
    EchoClient,
    HTTPChatClient,
    extract_completion,
)
from repro.resilience.faults import FaultClock
from repro.resilience.retry import CircuitBreaker, CircuitOpenError, RetryPolicy


class FakeResponse:
    def __init__(self, payload):
        self._payload = payload

    def read(self):
        return self._payload

    def __enter__(self):
        return self

    def __exit__(self, *args):
        return False


class TestEchoClient:
    def test_returns_fixed_response(self):
        assert EchoClient("yes").complete("anything") == "yes"

    def test_default(self):
        assert EchoClient().complete("x") == "True"

    def test_name(self):
        assert EchoClient().name == "EchoClient"


class TestHTTPChatClient:
    def test_requires_api_key(self):
        with pytest.raises(ValueError, match="api_key"):
            HTTPChatClient(api_key="")

    def test_name_is_model(self):
        client = HTTPChatClient(api_key="sk-test", model="gpt-4-0613")
        assert client.name == "gpt-4-0613"

    def test_defaults_match_paper_setup(self):
        client = HTTPChatClient(api_key="sk-test")
        assert client.model == "gpt-4-0613"
        assert client.endpoint.endswith("/v1/chat/completions")

    def test_is_chat_client(self):
        assert issubclass(HTTPChatClient, ChatClient)

    def test_malformed_response_error(self, monkeypatch):
        client = HTTPChatClient(api_key="sk-test")

        class FakeResponse:
            def read(self):
                return json.dumps({"unexpected": True}).encode()

            def __enter__(self):
                return self

            def __exit__(self, *args):
                return False

        monkeypatch.setattr(
            "urllib.request.urlopen", lambda *a, **k: FakeResponse()
        )
        with pytest.raises(RuntimeError, match="malformed"):
            client.complete("hello")

    def test_successful_response_parsed(self, monkeypatch):
        client = HTTPChatClient(api_key="sk-test", temperature=0.0)
        captured = {}

        class FakeResponse:
            def read(self):
                return json.dumps(
                    {"choices": [{"message": {"content": "True"}}]}
                ).encode()

            def __enter__(self):
                return self

            def __exit__(self, *args):
                return False

        def fake_urlopen(request, timeout):
            captured["body"] = json.loads(request.data.decode())
            captured["auth"] = request.headers.get("Authorization")
            return FakeResponse()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        assert client.complete("classify this") == "True"
        assert captured["body"]["model"] == "gpt-4-0613"
        assert captured["body"]["temperature"] == 0.0
        assert captured["body"]["messages"][0]["content"] == "classify this"
        assert captured["auth"] == "Bearer sk-test"


class TestErrorMapping:
    """Every HTTP failure mode becomes a typed ChatClientError."""

    def client(self):
        return HTTPChatClient(api_key="sk-test")

    def raise_from_urlopen(self, monkeypatch, error):
        def fake_urlopen(*args, **kwargs):
            raise error

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)

    def test_http_500_retryable(self, monkeypatch):
        self.raise_from_urlopen(
            monkeypatch,
            urllib.error.HTTPError("url", 500, "boom", {}, None),
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.status == 500
        assert exc.value.retryable
        assert exc.value.kind == "http"

    def test_http_429_retryable(self, monkeypatch):
        self.raise_from_urlopen(
            monkeypatch,
            urllib.error.HTTPError("url", 429, "rate limited", {}, None),
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.status == 429
        assert exc.value.retryable

    def test_http_401_not_retryable(self, monkeypatch):
        self.raise_from_urlopen(
            monkeypatch,
            urllib.error.HTTPError("url", 401, "bad key", {}, None),
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.status == 401
        assert not exc.value.retryable

    def test_timeout_maps_to_timeout_kind(self, monkeypatch):
        self.raise_from_urlopen(
            monkeypatch, urllib.error.URLError(TimeoutError("timed out"))
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.kind == "timeout"
        assert exc.value.retryable

    def test_network_error_retryable(self, monkeypatch):
        self.raise_from_urlopen(
            monkeypatch, urllib.error.URLError(ConnectionRefusedError())
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.kind == "network"
        assert exc.value.retryable

    def test_non_json_body_retryable(self, monkeypatch):
        monkeypatch.setattr(
            "urllib.request.urlopen",
            lambda *a, **k: FakeResponse(b"<html>502 Bad Gateway</html>"),
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.kind == "malformed"
        assert exc.value.retryable

    def test_wrong_shape_not_retryable(self, monkeypatch):
        monkeypatch.setattr(
            "urllib.request.urlopen",
            lambda *a, **k: FakeResponse(json.dumps({"choices": []}).encode()),
        )
        with pytest.raises(ChatClientError) as exc:
            self.client().complete("p")
        assert exc.value.kind == "protocol"
        assert not exc.value.retryable

    def test_retryable_statuses_constant(self):
        assert 429 in RETRYABLE_STATUSES
        assert 404 not in RETRYABLE_STATUSES


class TestExtractCompletion:
    def test_happy_path(self):
        body = {"choices": [{"message": {"content": "False"}}]}
        assert extract_completion(body) == "False"

    @pytest.mark.parametrize("body", [
        None,
        {},
        {"choices": []},
        {"choices": [{}]},
        {"choices": [{"message": {}}]},
        {"choices": [{"message": {"content": 42}}]},
        {"choices": "not-a-list"},
    ])
    def test_bad_shapes_raise_protocol_error(self, body):
        with pytest.raises(ChatClientError) as exc:
            extract_completion(body)
        assert exc.value.kind == "protocol"


class TestRetryWiring:
    def test_retry_policy_recovers_transient_failures(self, monkeypatch):
        attempts = []

        def flaky_urlopen(*args, **kwargs):
            attempts.append(1)
            if len(attempts) < 3:
                raise urllib.error.HTTPError("url", 500, "boom", {}, None)
            return FakeResponse(
                json.dumps({"choices": [{"message": {"content": "True"}}]}).encode()
            )

        monkeypatch.setattr("urllib.request.urlopen", flaky_urlopen)
        client = HTTPChatClient(
            api_key="sk-test",
            retry=RetryPolicy(base_delay=0.01, clock=FaultClock()),
        )
        assert client.complete("p") == "True"
        assert len(attempts) == 3

    def test_non_retryable_fails_fast_despite_policy(self, monkeypatch):
        attempts = []

        def denied_urlopen(*args, **kwargs):
            attempts.append(1)
            raise urllib.error.HTTPError("url", 401, "bad key", {}, None)

        monkeypatch.setattr("urllib.request.urlopen", denied_urlopen)
        client = HTTPChatClient(
            api_key="sk-test",
            retry=RetryPolicy(base_delay=0.01, clock=FaultClock()),
        )
        with pytest.raises(ChatClientError):
            client.complete("p")
        assert len(attempts) == 1

    def test_breaker_cuts_off_dead_endpoint(self, monkeypatch):
        attempts = []

        def dead_urlopen(*args, **kwargs):
            attempts.append(1)
            raise urllib.error.URLError(ConnectionRefusedError())

        monkeypatch.setattr("urllib.request.urlopen", dead_urlopen)
        clock = FaultClock()
        client = HTTPChatClient(
            api_key="sk-test",
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                                   clock=clock),
        )
        for _ in range(2):
            with pytest.raises(ChatClientError):
                client.complete("p")
        with pytest.raises(CircuitOpenError):
            client.complete("p")
        assert len(attempts) == 2  # the open circuit never hit the network


class TestDeadlineBudgets:
    """The per-request deadline flows end to end through the HTTP client."""

    def ok_response(self):
        return FakeResponse(
            json.dumps({"choices": [{"message": {"content": "True"}}]}).encode()
        )

    def test_remaining_budget_becomes_the_socket_timeout(self, monkeypatch):
        captured = {}

        def fake_urlopen(request, timeout):
            captured["timeout"] = timeout
            return self.ok_response()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        clock = FaultClock()
        client = HTTPChatClient(api_key="sk-test", timeout=60.0, clock=clock)
        client.complete("p", deadline_s=2.5)
        assert captured["timeout"] == pytest.approx(2.5)

    def test_client_timeout_still_caps_the_budget(self, monkeypatch):
        captured = {}

        def fake_urlopen(request, timeout):
            captured["timeout"] = timeout
            return self.ok_response()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        client = HTTPChatClient(
            api_key="sk-test", timeout=5.0, clock=FaultClock()
        )
        client.complete("p", deadline_s=120.0)
        assert captured["timeout"] == pytest.approx(5.0)

    def test_expired_budget_is_a_typed_timeout_error(self, monkeypatch):
        monkeypatch.setattr(
            "urllib.request.urlopen",
            lambda *a, **k: pytest.fail("must not touch the network"),
        )
        clock = FaultClock()
        client = HTTPChatClient(api_key="sk-test", clock=clock)
        # Time leaps past the deadline between computing `expires` and the
        # remaining-budget check of the first attempt.
        real_monotonic = clock.monotonic

        def stepping_monotonic():
            value = real_monotonic()
            clock.advance(3.0)
            return value

        clock.monotonic = stepping_monotonic
        with pytest.raises(ChatClientError) as exc:
            client.complete("p", deadline_s=1.0)
        assert exc.value.kind == "timeout"
        assert exc.value.retryable is False

    def test_no_retries_once_the_budget_is_spent(self, monkeypatch):
        attempts = []
        clock = FaultClock()

        def slow_failing_urlopen(*args, **kwargs):
            attempts.append(1)
            clock.advance(2.0)  # each attempt burns 2s of virtual time
            raise urllib.error.URLError(TimeoutError("socket timed out"))

        monkeypatch.setattr("urllib.request.urlopen", slow_failing_urlopen)
        client = HTTPChatClient(
            api_key="sk-test",
            clock=clock,
            retry=RetryPolicy(max_attempts=5, base_delay=0.01, clock=clock),
        )
        with pytest.raises(ChatClientError) as exc:
            client.complete("p", deadline_s=1.5)
        # The first attempt consumed the whole budget; the timeout error
        # must surface immediately instead of burning four more attempts.
        assert len(attempts) == 1
        assert exc.value.kind == "timeout"

    def test_socket_timeout_is_a_retryable_timeout_error(self, monkeypatch):
        def timing_out_urlopen(*args, **kwargs):
            raise urllib.error.URLError(TimeoutError("timed out"))

        monkeypatch.setattr("urllib.request.urlopen", timing_out_urlopen)
        client = HTTPChatClient(api_key="sk-test")
        with pytest.raises(ChatClientError) as exc:
            client.complete_indexed("p", 0, timeout_s=0.5)
        assert exc.value.kind == "timeout"
        assert exc.value.retryable is True

    def test_complete_indexed_bypasses_client_retry(self, monkeypatch):
        attempts = []

        def failing_urlopen(*args, **kwargs):
            attempts.append(1)
            raise urllib.error.URLError(ConnectionRefusedError())

        monkeypatch.setattr("urllib.request.urlopen", failing_urlopen)
        client = HTTPChatClient(
            api_key="sk-test",
            retry=RetryPolicy(max_attempts=5, base_delay=0.01,
                              clock=FaultClock()),
        )
        with pytest.raises(ChatClientError):
            client.complete_indexed("p", 0)
        # The engine owns retries at the backend layer; the stateless entry
        # point must not stack the client's own schedule on top.
        assert len(attempts) == 1
