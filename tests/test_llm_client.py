"""Tests for the chat-client interface (offline paths only)."""

import json

import pytest

from repro.llm.client import ChatClient, EchoClient, HTTPChatClient


class TestEchoClient:
    def test_returns_fixed_response(self):
        assert EchoClient("yes").complete("anything") == "yes"

    def test_default(self):
        assert EchoClient().complete("x") == "True"

    def test_name(self):
        assert EchoClient().name == "EchoClient"


class TestHTTPChatClient:
    def test_requires_api_key(self):
        with pytest.raises(ValueError, match="api_key"):
            HTTPChatClient(api_key="")

    def test_name_is_model(self):
        client = HTTPChatClient(api_key="sk-test", model="gpt-4-0613")
        assert client.name == "gpt-4-0613"

    def test_defaults_match_paper_setup(self):
        client = HTTPChatClient(api_key="sk-test")
        assert client.model == "gpt-4-0613"
        assert client.endpoint.endswith("/v1/chat/completions")

    def test_is_chat_client(self):
        assert issubclass(HTTPChatClient, ChatClient)

    def test_malformed_response_error(self, monkeypatch):
        client = HTTPChatClient(api_key="sk-test")

        class FakeResponse:
            def read(self):
                return json.dumps({"unexpected": True}).encode()

            def __enter__(self):
                return self

            def __exit__(self, *args):
                return False

        monkeypatch.setattr(
            "urllib.request.urlopen", lambda *a, **k: FakeResponse()
        )
        with pytest.raises(RuntimeError, match="malformed"):
            client.complete("hello")

    def test_successful_response_parsed(self, monkeypatch):
        client = HTTPChatClient(api_key="sk-test", temperature=0.0)
        captured = {}

        class FakeResponse:
            def read(self):
                return json.dumps(
                    {"choices": [{"message": {"content": "True"}}]}
                ).encode()

            def __enter__(self):
                return self

            def __exit__(self, *args):
                return False

        def fake_urlopen(request, timeout):
            captured["body"] = json.loads(request.data.decode())
            captured["auth"] = request.headers.get("Authorization")
            return FakeResponse()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        assert client.complete("classify this") == "True"
        assert captured["body"]["model"] == "gpt-4-0613"
        assert captured["body"]["temperature"] == 0.0
        assert captured["body"]["messages"][0]["content"] == "classify this"
        assert captured["auth"] == "Bearer sk-test"
