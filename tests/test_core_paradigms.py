"""Tests for the unified paradigm wrappers."""

import numpy as np
import pytest

from repro.core.datasets import train_test_split_9_1
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    LSTMParadigm,
    RandomForestParadigm,
)
from repro.bert.finetune import FineTuneConfig
from repro.llm.client import EchoClient
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table
from repro.ml.forest import RandomForestConfig
from repro.ml.lstm import LSTMConfig


@pytest.fixture(scope="module")
def split(task1_dataset):
    return train_test_split_9_1(task1_dataset, seed=0)


@pytest.fixture(scope="module")
def small_train(split):
    return list(split.train)[:400]


@pytest.fixture(scope="module")
def small_test(split):
    return list(split.test)[:100]


class TestRandomForestParadigm:
    def test_fit_predict_beats_chance(self, lab, small_train, small_test):
        paradigm = RandomForestParadigm(
            lab.embedding("W2V-Chem"),
            config=RandomForestConfig(n_estimators=10, seed=0),
        )
        paradigm.fit(small_train)
        gold = np.array([t.label for t in small_test])
        accuracy = (paradigm.predict(small_test) == gold).mean()
        assert accuracy > 0.55

    def test_unfitted_raises(self, lab, small_test):
        paradigm = RandomForestParadigm(lab.embedding("Random"))
        with pytest.raises(RuntimeError):
            paradigm.classify(small_test)

    def test_classify_never_none(self, lab, small_train, small_test):
        paradigm = RandomForestParadigm(
            lab.embedding("Random"),
            config=RandomForestConfig(n_estimators=4, seed=0),
        ).fit(small_train)
        assert all(c in (0, 1) for c in paradigm.classify(small_test))

    def test_predict_proba(self, lab, small_train, small_test):
        paradigm = RandomForestParadigm(
            lab.embedding("Random"),
            config=RandomForestConfig(n_estimators=4, seed=0),
        ).fit(small_train)
        probs = paradigm.predict_proba(small_test)
        assert np.all((probs >= 0) & (probs <= 1))


class TestLSTMParadigm:
    def test_fit_predict(self, lab, small_train, small_test):
        paradigm = LSTMParadigm(
            lab.embedding("W2V-Chem"), config=LSTMConfig(epochs=2, seed=0)
        ).fit(small_train)
        predictions = paradigm.predict(small_test)
        assert predictions.shape == (len(small_test),)
        assert set(np.unique(predictions)) <= {0, 1}


class TestFineTuneParadigm:
    def test_fit_predict(self, lab, small_train, small_test):
        paradigm = FineTuneParadigm(
            lab.bert, FineTuneConfig(epochs=1, seed=0)
        ).fit(small_train)
        predictions = paradigm.predict(small_test)
        assert predictions.shape == (len(small_test),)


class TestICLParadigm:
    def test_simulated_client(self, task1_dataset, small_train, small_test):
        client = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        paradigm = ICLParadigm(client, seed=0).fit(small_train)
        gold = np.array([t.label for t in small_test])
        accuracy = (paradigm.predict(small_test) == gold).mean()
        assert accuracy > 0.7

    def test_unclassified_mapped_to_none(self, small_train, small_test):
        paradigm = ICLParadigm(EchoClient("no idea"), seed=0).fit(small_train)
        decisions = paradigm.classify(small_test[:5])
        assert decisions == [None] * 5
        assert paradigm.predict(small_test[:5]).tolist() == [0] * 5

    def test_fit_requires_examples(self):
        paradigm = ICLParadigm(EchoClient())
        with pytest.raises(ValueError):
            paradigm.fit([])

    def test_unfitted_raises(self, small_test):
        with pytest.raises(RuntimeError):
            ICLParadigm(EchoClient()).classify(small_test)


class TestLogisticRegressionParadigm:
    def test_fit_predict(self, lab, small_train, small_test):
        from repro.core.paradigms import LogisticRegressionParadigm

        paradigm = LogisticRegressionParadigm(lab.embedding("W2V-Chem")).fit(
            small_train
        )
        gold = np.array([t.label for t in small_test])
        accuracy = (paradigm.predict(small_test) == gold).mean()
        assert accuracy > 0.55

    def test_predict_proba(self, lab, small_train, small_test):
        from repro.core.paradigms import LogisticRegressionParadigm

        paradigm = LogisticRegressionParadigm(lab.embedding("Random")).fit(
            small_train
        )
        probs = paradigm.predict_proba(small_test)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_unfitted_raises(self, lab, small_test):
        from repro.core.paradigms import LogisticRegressionParadigm

        with pytest.raises(RuntimeError):
            LogisticRegressionParadigm(lab.embedding("Random")).classify(small_test)
