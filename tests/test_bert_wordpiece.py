"""Tests for WordPiece training and encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bert.wordpiece import (
    SPECIAL_TOKENS,
    WordPieceTokenizer,
    train_wordpiece,
)

CORPUS = [
    ["hydroxy", "acid", "hydroxyacid"],
    ["hydroxy", "butanoic", "acid"],
    ["amino", "acid", "aminobutanoic"],
] * 10


class TestTrainWordpiece:
    def test_specials_present(self):
        tokenizer = train_wordpiece(CORPUS, vocab_size=80)
        for special in SPECIAL_TOKENS:
            assert special in tokenizer

    def test_merges_frequent_pairs(self):
        tokenizer = train_wordpiece(CORPUS, vocab_size=200)
        # 'acid' is frequent enough to become a single piece.
        assert tokenizer.encode_word("acid") == [tokenizer.id_of("acid")]

    def test_vocab_size_bounded(self):
        tokenizer = train_wordpiece(CORPUS, vocab_size=60)
        assert len(tokenizer) <= 60 + 1  # final merge may add one piece

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            train_wordpiece(CORPUS, vocab_size=5)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            train_wordpiece([], vocab_size=100)


class TestEncoding:
    @pytest.fixture(scope="class")
    def tokenizer(self):
        return train_wordpiece(CORPUS, vocab_size=150)

    def test_greedy_longest_match(self, tokenizer):
        pieces = tokenizer.encode_word("hydroxyacid")
        decoded = tokenizer.decode(pieces)
        assert decoded.replace(" ", "") == "hydroxyacid"

    def test_unknown_characters_give_unk(self, tokenizer):
        assert tokenizer.encode_word("ØØØ") == [tokenizer.unk_id]

    def test_encode_adds_specials(self, tokenizer):
        ids = tokenizer.encode(["acid"])
        assert ids[0] == tokenizer.cls_id
        assert ids[-1] == tokenizer.sep_id

    def test_encode_truncates(self, tokenizer):
        ids = tokenizer.encode(["hydroxy"] * 50, max_len=10)
        assert len(ids) == 10
        assert ids[-1] == tokenizer.sep_id

    def test_decode_skips_specials(self, tokenizer):
        ids = tokenizer.encode(["acid", "amino"])
        assert tokenizer.decode(ids) == "acid amino"

    def test_empty_word(self, tokenizer):
        assert tokenizer.encode_word("") == []

    def test_duplicate_pieces_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WordPieceTokenizer(list(SPECIAL_TOKENS) + ["a", "a"])

    def test_missing_special_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            WordPieceTokenizer(["a", "b"])

    @settings(deadline=None, max_examples=30)
    @given(st.text(alphabet="abcdxyz", min_size=1, max_size=15))
    def test_round_trip_known_alphabet(self, tokenizer, word):
        # every single character of the training alphabet is in the vocab,
        # so greedy encoding must reconstruct the word exactly.
        pieces = tokenizer.encode_word(word)
        if tokenizer.unk_id not in pieces:
            assert tokenizer.decode(pieces).replace(" ", "") == word
