"""Tests for the concurrent delivery engine and its ICL integration.

The load-bearing property throughout: with interchangeable backends the
outcome map — and therefore the ICL table — is a pure function of the
request set, whatever the thread schedule, fault schedule, hedge winners,
or resume point.
"""

import threading

import pytest

from repro.core.datasets import build_task_dataset
from repro.delivery import (
    DeliveryBackend,
    DeliveryConfig,
    DeliveryEngine,
    DeliveryError,
    DeliveryRequest,
    ResponseCache,
    simulated_backends,
)
from repro.llm.client import ChatClientError, EchoClient
from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import GPT35_PROFILE, SimulatedChatModel, truth_table
from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like
from repro.resilience.checkpoint import CheckpointAbort, Journal
from repro.resilience.faults import FaultClock
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def icl_setup():
    ontology = synthesize_chebi_like(
        SynthesisConfig(n_chemical_entities=120, seed=0)
    )
    dataset = build_task_dataset(ontology, 1, seed=0)
    config = ICLConfig(
        n_positive_queries=4, n_negative_queries=4, n_repeats=2, seed=0
    )
    return {
        "dataset": dataset,
        "truth": truth_table(dataset),
        "pool": list(dataset)[:100],
        "queries": build_icl_queries(dataset, config),
        "config": config,
    }


def _sequential_result(icl_setup):
    client = SimulatedChatModel(GPT35_PROFILE, icl_setup["truth"], 1, seed=0)
    return run_icl_experiment(
        client,
        icl_setup["pool"],
        icl_setup["queries"],
        PromptVariant.BASE,
        icl_setup["config"],
    )


def _engine_result(icl_setup, engine, **kwargs):
    client = SimulatedChatModel(GPT35_PROFILE, icl_setup["truth"], 1, seed=0)
    return run_icl_experiment(
        client,
        icl_setup["pool"],
        icl_setup["queries"],
        PromptVariant.BASE,
        icl_setup["config"],
        engine=engine,
        **kwargs,
    )


def _backends(icl_setup, n=3, **kwargs):
    return simulated_backends(
        GPT35_PROFILE, icl_setup["truth"], 1, n_backends=n, seed=0, **kwargs
    )


class _AlwaysFailing(EchoClient):
    def complete_indexed(self, prompt, repeat, *, timeout_s=None):
        raise ChatClientError("down", retryable=True, kind="network")


class TestEngineBasics:
    def test_requires_backends_with_unique_names(self):
        with pytest.raises(ValueError):
            DeliveryEngine([])
        pair = [
            DeliveryBackend("dup", EchoClient()),
            DeliveryBackend("dup", EchoClient()),
        ]
        with pytest.raises(ValueError):
            DeliveryEngine(pair)

    def test_complete_returns_text(self):
        with DeliveryEngine([DeliveryBackend("b0", EchoClient())]) as engine:
            assert engine.complete("any prompt") == "True"

    def test_complete_raises_typed_error_on_failure(self):
        with DeliveryEngine(
            [DeliveryBackend("b0", _AlwaysFailing())]
        ) as engine:
            with pytest.raises(DeliveryError) as exc:
                engine.complete("any prompt")
        assert exc.value.outcome.status == "failed"
        assert exc.value.retryable is False

    def test_shed_when_every_breaker_is_open(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        engine = DeliveryEngine(
            [DeliveryBackend("b0", EchoClient(), breaker=breaker, clock=clock)]
        )
        outcome = engine.deliver(DeliveryRequest(key="k", prompt="p"))
        assert outcome.status == "shed"
        assert engine.counters().get("shed") == 1

    def test_deadline_outcome_without_burning_the_schedule(self):
        clock = FaultClock()
        backend = DeliveryBackend(
            "b0",
            _AlwaysFailing(),
            retry=RetryPolicy(
                max_attempts=5, base_delay=10.0, clock=clock, seed=0
            ),
            clock=clock,
        )
        engine = DeliveryEngine(
            [backend], DeliveryConfig(deadline_s=0.5)
        )
        outcome = engine.deliver(DeliveryRequest(key="k", prompt="p"))
        assert outcome.status == "deadline"
        assert engine.counters() == {"deliveries": 1, "deadline": 1}

    def test_hedge_delay_is_seeded_and_jittered(self):
        engine = DeliveryEngine(
            [DeliveryBackend("b0", EchoClient())],
            DeliveryConfig(hedge_s=0.1, hedge_jitter=0.5, seed=7),
        )
        delays = [engine.hedge_delay_s(i) for i in range(20)]
        assert delays == [engine.hedge_delay_s(i) for i in range(20)]
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert len(set(delays)) > 1


class _BlockingClient(EchoClient):
    """Blocks indexed calls on an event — a controllable straggler."""

    def __init__(self, release: threading.Event):
        super().__init__("primary answer")
        self.release = release

    def complete_indexed(self, prompt, repeat, *, timeout_s=None):
        assert self.release.wait(timeout=30), "test straggler never released"
        return self.complete(prompt)


class TestHedging:
    def test_hedge_wins_and_counts_once(self):
        release = threading.Event()
        primary = DeliveryBackend("slow", _BlockingClient(release))
        secondary = DeliveryBackend("fast", EchoClient("hedge answer"))
        engine = DeliveryEngine(
            [primary, secondary],
            DeliveryConfig(hedge_s=0.02, hedge_jitter=0.0),
        )
        try:
            outcome = engine.deliver(DeliveryRequest(key="k", prompt="p"))
            assert outcome.ok
            assert outcome.text == "hedge answer"
            assert outcome.backend == "fast"
            assert outcome.hedged
            counters = engine.counters()
            assert counters["hedged"] == 1
            assert counters["deliveries"] == 1
            assert counters["completions"] == 1
        finally:
            release.set()
            engine.close()

    def test_hedged_failure_surfaces_last_error(self):
        engine = DeliveryEngine(
            [
                DeliveryBackend("a", _AlwaysFailing()),
                DeliveryBackend("b", _AlwaysFailing()),
            ],
            DeliveryConfig(hedge_s=0.0, hedge_jitter=0.0),
        )
        try:
            outcome = engine.deliver(DeliveryRequest(key="k", prompt="p"))
            assert outcome.status == "failed"
        finally:
            engine.close()


class TestResponseCaching:
    def test_run_serves_warm_requests_from_cache(self, tmp_path):
        cache = ResponseCache(tmp_path / "cache")
        requests = [
            DeliveryRequest(key=str(i), prompt=f"prompt {i}", index=i)
            for i in range(6)
        ]
        with DeliveryEngine(
            [DeliveryBackend("b0", EchoClient())], cache=cache
        ) as engine:
            first = engine.run(requests)
        assert first.delivered == 6 and first.cache_hits == 0
        with DeliveryEngine(
            [DeliveryBackend("b0", EchoClient())], cache=cache
        ) as engine:
            second = engine.run(requests)
        assert second.delivered == 0 and second.cache_hits == 6
        assert {key: o.text for key, o in second.outcomes.items()} == {
            key: o.text for key, o in first.outcomes.items()
        }

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResponseCache(tmp_path / "cache")
        with DeliveryEngine(
            [DeliveryBackend("b0", _AlwaysFailing())], cache=cache
        ) as engine:
            engine.run([DeliveryRequest(key="k", prompt="p")])
        assert cache.get(EchoClient().name, "p", 0) is None
        assert cache.get("EchoClient", "p", 0) is None

    def test_cache_hits_do_not_consume_the_budget(self, tmp_path):
        cache = ResponseCache(tmp_path / "cache")
        requests = [
            DeliveryRequest(key=str(i), prompt=f"prompt {i}", index=i)
            for i in range(4)
        ]
        with DeliveryEngine(
            [DeliveryBackend("b0", EchoClient())], cache=cache
        ) as engine:
            engine.run(requests[:2])
        with DeliveryEngine(
            [DeliveryBackend("b0", EchoClient())], cache=cache
        ) as engine:
            report = engine.run(requests, max_deliveries=2)
        assert report.cache_hits == 2
        assert report.delivered == 2
        assert report.skipped == 0


class TestEngineMatchesSequential:
    def test_concurrent_table_is_byte_identical(self, icl_setup):
        sequential = _sequential_result(icl_setup)
        with DeliveryEngine(
            _backends(icl_setup, n=3), DeliveryConfig(jobs=4)
        ) as engine:
            concurrent = _engine_result(icl_setup, engine)
        assert concurrent.as_row() == sequential.as_row()

    def test_faulted_concurrent_table_is_byte_identical(self, icl_setup):
        sequential = _sequential_result(icl_setup)
        retry = RetryPolicy(base_delay=0.01, clock=FaultClock(), seed=0)
        backends = _backends(
            icl_setup,
            n=3,
            fault_plan_text="timeout:0.15,http500:0.1,malformed:0.05",
            retry=retry,
        )
        with DeliveryEngine(
            backends, DeliveryConfig(jobs=4, hedge_s=0.05)
        ) as engine:
            faulted = _engine_result(icl_setup, engine)
        assert faulted.as_row() == sequential.as_row()

    def test_kill_and_resume_matches_sequential(self, icl_setup, tmp_path):
        sequential = _sequential_result(icl_setup)
        journal = tmp_path / "icl.journal"
        with DeliveryEngine(
            _backends(icl_setup, n=3), DeliveryConfig(jobs=4)
        ) as engine:
            with pytest.raises(CheckpointAbort) as abort:
                _engine_result(
                    icl_setup, engine, journal=journal, max_deliveries=5
                )
        assert abort.value.delivered == 5
        assert len(Journal(journal).load()) == 5 + 1  # + __meta__
        with DeliveryEngine(
            _backends(icl_setup, n=3), DeliveryConfig(jobs=4)
        ) as engine:
            resumed = _engine_result(icl_setup, engine, journal=journal)
        assert resumed.n_resumed == 5
        assert resumed.as_row() == sequential.as_row()

    def test_warm_cache_rerun_rebuilds_nothing(self, icl_setup, tmp_path):
        sequential = _sequential_result(icl_setup)
        cache = ResponseCache(tmp_path / "cache")
        with DeliveryEngine(
            _backends(icl_setup, n=2), DeliveryConfig(jobs=4), cache=cache
        ) as engine:
            cold = _engine_result(icl_setup, engine)
            cold_counters = engine.counters()
        with DeliveryEngine(
            _backends(icl_setup, n=2), DeliveryConfig(jobs=4), cache=cache
        ) as engine:
            warm = _engine_result(icl_setup, engine)
            warm_counters = engine.counters()
        n_deliveries = cold_counters["deliveries"]
        assert warm_counters == {"cache_hit": n_deliveries}
        assert "completions" not in warm_counters
        assert warm.as_row() == sequential.as_row()
        assert cold.as_row() == sequential.as_row()


class TestJournalUnderConcurrency:
    def test_concurrent_appends_replay_to_one_map(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl", sync=False)
        entries = {f"{r}:{q}": "true" for r in range(4) for q in range(25)}

        def write(keys):
            for key in keys:
                journal.record(key, entries[key])

        keys = sorted(entries)
        chunks = [keys[i::8] for i in range(8)]
        threads = [
            threading.Thread(target=write, args=(chunk,)) for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        assert journal.load() == entries

    @pytest.mark.parametrize("seed", range(5))
    def test_append_order_never_changes_the_replay(self, tmp_path, seed):
        # Property over seeded schedules: any permutation of the appends a
        # worker pool could produce loads to the same state.
        entries = {f"0:{q}": ("true" if q % 3 else "failed") for q in range(30)}
        order = list(entries)
        derive_rng(seed, "journal-order").shuffle(order)
        journal = Journal(tmp_path / f"j{seed}.jsonl", sync=False)
        for key in order:
            journal.record(key, entries[key])
        journal.close()
        assert journal.load() == entries


class TestICLParadigmEngine:
    def test_engine_path_matches_client_path(self, icl_setup):
        from repro.core.paradigms import ICLParadigm

        triples = icl_setup["pool"][:6]
        train = icl_setup["pool"][6:60]
        direct = ICLParadigm(
            SimulatedChatModel(GPT35_PROFILE, icl_setup["truth"], 1, seed=0),
            seed=0,
        ).fit(train)
        expected = direct.classify(triples)
        with DeliveryEngine(_backends(icl_setup, n=2)) as engine:
            routed = ICLParadigm(
                SimulatedChatModel(
                    GPT35_PROFILE, icl_setup["truth"], 1, seed=0
                ),
                seed=0,
                engine=engine,
            ).fit(train)
            assert routed.classify(triples) == expected

    def test_engine_failure_degrades_to_none(self, icl_setup):
        from repro.core.paradigms import ICLParadigm

        train = icl_setup["pool"][6:60]
        with DeliveryEngine([DeliveryBackend("b0", _AlwaysFailing())]) as engine:
            paradigm = ICLParadigm(
                _AlwaysFailing(), seed=0, engine=engine
            ).fit(train)
            labels = paradigm.classify(icl_setup["pool"][:3])
        assert labels == [None, None, None]
