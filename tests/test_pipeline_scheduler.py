"""Scheduler tests: parallel == serial, failure isolation, executors."""

import dataclasses
import threading

import numpy as np
import pytest

from repro.core.experiment import Lab
from repro.obs.manifest import build_manifest, clear_context
from repro.pipeline.graph import StageGraph
from repro.pipeline.scheduler import StageScheduler
from repro.pipeline.stage import Stage, StageError
from tests.conftest import MICRO_LAB_CONFIG


class ToyLab:
    """The minimal Lab surface the scheduler drives, over a toy graph."""

    def __init__(self, graph):
        self.graph = graph
        self.store = None
        self.config = MICRO_LAB_CONFIG
        self._cache = {}
        self._lock = threading.Lock()
        self.build_log = []

    def materialize(self, name):
        with self._lock:
            if name in self._cache:
                return self._cache[name]
        stage = self.graph.stage(name)
        inputs = {dep: self.materialize(dep) for dep in stage.deps}
        artifact = stage.build(self, inputs)
        with self._lock:
            self._cache[name] = artifact
            self.build_log.append(name)
        return artifact


def _toy_graph(failing=()):
    def build(name):
        def _build(lab, inputs):
            if name in failing:
                raise RuntimeError(f"{name} exploded")
            return name

        return _build

    graph = StageGraph(
        [
            Stage(name="root", build=build("root")),
            Stage(name="left", build=build("left"), deps=("root",)),
            Stage(name="right", build=build("right"), deps=("root",)),
            Stage(name="left-leaf", build=build("left-leaf"), deps=("left",)),
            Stage(name="right-leaf", build=build("right-leaf"), deps=("right",)),
        ]
    )
    graph.validate()
    return graph


class TestFailureIsolation:
    def test_failure_surfaces_as_stage_error_naming_the_stage(self):
        lab = ToyLab(_toy_graph(failing={"left"}))
        with pytest.raises(StageError, match="stage 'left' failed") as info:
            StageScheduler(lab).run(["left-leaf", "right-leaf"], jobs=2)
        assert info.value.stage == "left"

    def test_siblings_survive_and_descendants_skip(self):
        lab = ToyLab(_toy_graph(failing={"left"}))
        results = StageScheduler(lab).run(
            ["left-leaf", "right-leaf"], jobs=2, raise_on_error=False
        )
        assert results["left"].status == "failed"
        assert "exploded" in results["left"].error
        assert results["left-leaf"].status == "skipped"
        assert "left" in results["left-leaf"].error
        # the failure does not poison the sibling branch
        assert results["right"].status == "ok"
        assert results["right-leaf"].status == "ok"
        assert lab._cache["right-leaf"] == "right-leaf"
        assert "left-leaf" not in lab._cache

    def test_unknown_executor_rejected(self):
        lab = ToyLab(_toy_graph())
        with pytest.raises(ValueError, match="unknown executor"):
            StageScheduler(lab).run(["root"], executor="carrier-pigeon")

    def test_process_executor_requires_store(self):
        lab = ToyLab(_toy_graph())
        with pytest.raises(StageError, match="artifact store"):
            StageScheduler(lab).run(["root"], executor="process")


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path):
        serial_lab = Lab(
            dataclasses.replace(
                MICRO_LAB_CONFIG, artifact_dir=str(tmp_path / "serial")
            )
        )
        serial_results = serial_lab.warm(jobs=1)
        parallel_lab = Lab(
            dataclasses.replace(
                MICRO_LAB_CONFIG, artifact_dir=str(tmp_path / "parallel")
            )
        )
        parallel_results = parallel_lab.warm(jobs=4)

        assert set(serial_results) == set(parallel_results)
        assert all(r.status == "ok" for r in serial_results.values())
        assert all(r.status == "ok" for r in parallel_results.values())

        # identical artifacts regardless of schedule
        assert (
            serial_lab.dataset(1).triples == parallel_lab.dataset(1).triples
        )
        assert (
            serial_lab.chemistry_sentences == parallel_lab.chemistry_sentences
        )
        for name in ("GloVe", "W2V-Chem", "GloVe-Chem"):
            assert np.array_equal(
                serial_lab.embedding(name).matrix,
                parallel_lab.embedding(name).matrix,
            ), name
        assert np.allclose(
            serial_lab.bert.pretrain_losses, parallel_lab.bert.pretrain_losses
        )
        # identical store contents: same stages, same content-addressed keys
        serial_entries = [
            (i.stage, i.key)
            for i in serial_lab.store.ls()
        ]
        parallel_entries = [
            (i.stage, i.key)
            for i in parallel_lab.store.ls()
        ]
        assert serial_entries == parallel_entries

    def test_manifest_records_stage_statuses(self, tmp_path):
        clear_context()
        lab = Lab(
            dataclasses.replace(
                MICRO_LAB_CONFIG, artifact_dir=str(tmp_path / "store")
            )
        )
        lab.warm(jobs=2)
        stages = build_manifest()["context"]["stages"]
        assert stages["ontology"]["status"] == "miss"
        assert stages["ontology"]["key"] == lab.stage_key("ontology")
        assert stages["ontology"]["duration_s"] >= 0
        # derived stages (no store entry) report as built
        assert stages["embedding-Random"]["status"] == "built"


class TestSpanAttribution:
    """Worker spans must nest under the scheduler-run span, not float off
    as roots, whichever executor ran them."""

    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        from repro.obs import trace

        tracer = trace.get_tracer()
        was_enabled = tracer.enabled
        trace.reset()
        tracer.enabled = True
        yield
        tracer.enabled = was_enabled
        trace.reset()

    def _spanning_graph(self):
        from repro.obs.trace import span
        from repro.pipeline.graph import StageGraph

        def build(name):
            def _build(lab, inputs):
                with span(f"stage.{name}"):
                    return name

            return _build

        graph = StageGraph(
            [
                Stage(name="root", build=build("root")),
                Stage(name="left", build=build("left"), deps=("root",)),
                Stage(name="right", build=build("right"), deps=("root",)),
            ]
        )
        graph.validate()
        return graph

    def _descendant_names(self, span_obj):
        names = []
        frontier = list(span_obj.children)
        while frontier:
            node = frontier.pop()
            names.append(node.name)
            frontier.extend(node.children)
        return names

    def test_thread_executor_nests_worker_spans(self):
        from repro.obs.trace import get_tracer

        lab = ToyLab(self._spanning_graph())
        StageScheduler(lab).run(["left", "right"], jobs=2)
        roots = get_tracer().roots()
        assert [r.name for r in roots] == ["scheduler.run"]
        run_span = roots[0]
        names = self._descendant_names(run_span)
        assert sorted(set(names)) == ["stage.left", "stage.right", "stage.root"]
        assert run_span.counters.get("stages.ok") == 3
        # worker spans must not leak into the root list
        assert all(not r.name.startswith("stage.") for r in roots)

    def test_thread_executor_serial_jobs_nest_too(self):
        from repro.obs.trace import get_tracer

        lab = ToyLab(self._spanning_graph())
        StageScheduler(lab).run(["left"], jobs=1)
        roots = get_tracer().roots()
        assert [r.name for r in roots] == ["scheduler.run"]
        assert set(self._descendant_names(roots[0])) == {
            "stage.left", "stage.root",
        }

    def test_process_executor_nests_parent_side_spans(self, tmp_path):
        from repro.obs.trace import get_tracer

        clear_context()
        lab = Lab(
            dataclasses.replace(
                MICRO_LAB_CONFIG, artifact_dir=str(tmp_path / "store")
            )
        )
        StageScheduler(lab).run(["ontology"], jobs=2, executor="process")
        roots = get_tracer().roots()
        run_roots = [r for r in roots if r.name == "scheduler.run"]
        assert len(run_roots) == 1
        # the parent re-materialises the stage (a store hit) inside the
        # scheduler.run span; its lab.* span must nest there, not at root
        names = self._descendant_names(run_roots[0])
        assert "lab.ontology" in names
        assert all(r.name != "lab.ontology" for r in roots)

    def test_nested_span_timing_consistent_under_threads(self):
        from repro.obs.trace import get_tracer

        lab = ToyLab(self._spanning_graph())
        StageScheduler(lab).run(["left", "right"], jobs=2)
        run_span = get_tracer().roots()[0]
        assert run_span.duration > 0
        for child in run_span.children:
            # worker spans were timed on their own clock, not re-timed by
            # adoption; each fits within the scheduler-run envelope
            assert 0 <= child.duration <= run_span.duration
