"""Stage-graph structure and content-addressed cache-key tests."""

import dataclasses

import pytest

from repro.core.experiment import LabConfig, lab_graph
from repro.pipeline.graph import StageGraph
from repro.pipeline.stage import Stage, StageError


def _stage(name, deps=(), **kwargs):
    return Stage(name=name, build=lambda lab, inputs: name, deps=deps, **kwargs)


class TestStage:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            _stage("")

    def test_save_load_must_pair(self):
        with pytest.raises(ValueError, match="both save and load"):
            Stage(
                name="x",
                build=lambda lab, inputs: None,
                save=lambda artifact, entry_dir: None,
            )

    def test_persistable(self):
        assert not _stage("x").persistable
        paired = Stage(
            name="x",
            build=lambda lab, inputs: None,
            save=lambda artifact, entry_dir: None,
            load=lambda entry_dir, inputs: None,
        )
        assert paired.persistable

    def test_stage_error_names_stage(self):
        error = StageError("bert", "exploded")
        assert error.stage == "bert"
        assert "bert" in str(error)
        assert "exploded" in str(error)


class TestStageGraphStructure:
    def test_register_rejects_duplicates(self):
        graph = StageGraph([_stage("a")])
        with pytest.raises(ValueError, match="already registered"):
            graph.register(_stage("a"))

    def test_unknown_stage_is_keyerror(self):
        graph = StageGraph([_stage("a")])
        with pytest.raises(KeyError, match="unknown stage 'b'"):
            graph.stage("b")

    def test_validate_rejects_unknown_dep(self):
        graph = StageGraph([_stage("a", deps=("ghost",))])
        with pytest.raises(ValueError, match="unknown stage 'ghost'"):
            graph.validate()

    def test_topological_order_is_deterministic_and_deps_first(self):
        graph = StageGraph(
            [
                _stage("z"),
                _stage("m", deps=("z",)),
                _stage("a", deps=("z",)),
                _stage("end", deps=("m", "a")),
            ]
        )
        order = graph.topological_order()
        assert order == ["z", "a", "m", "end"]  # lexicographic among ready
        assert order == graph.topological_order()

    def test_topological_order_detects_cycles(self):
        graph = StageGraph(
            [_stage("a", deps=("b",)), _stage("b", deps=("a",))]
        )
        with pytest.raises(ValueError, match="cycle"):
            graph.topological_order()

    def test_closure_and_dependents(self):
        graph = StageGraph(
            [
                _stage("root"),
                _stage("mid", deps=("root",)),
                _stage("leaf", deps=("mid",)),
                _stage("other"),
            ]
        )
        assert graph.closure(["leaf"]) == {"root", "mid", "leaf"}
        assert graph.dependents("root") == ["mid"]


class TestLabGraph:
    def test_builds_and_validates(self):
        graph = lab_graph()
        assert len(graph) > 50
        for expected in (
            "ontology",
            "corpus-chemistry",
            "wordpiece",
            "bert",
            "embedding-GloVe-Chem",
            "dataset-1",
            "ml-split-3",
            "task-filter-W2V-Chem",
            "forest-1-W2V-Chem-naive",
            "fine-tuned-2",
        ):
            assert expected in graph

    def test_persistable_subgraph_closed_under_persistable_deps(self):
        # A persistable stage may depend on a derived one (task-filter-Random
        # on the random embedding), but every *expensive* substrate of a
        # persistable stage must itself persist, or warm runs would rebuild.
        graph = lab_graph()
        for stage in graph:
            if not stage.persistable:
                continue
            for dep in stage.deps:
                dep_stage = graph.stage(dep)
                assert dep_stage.persistable or dep.startswith("embedding-"), (
                    f"{stage.name} depends on unpersistable {dep}"
                )


class TestCacheKeys:
    def test_keys_are_stable_across_calls(self):
        graph = lab_graph()
        config = LabConfig()
        assert graph.keys(config) == graph.keys(config)

    def test_config_field_changes_stage_and_dependent_keys(self):
        graph = lab_graph()
        base = graph.keys(LabConfig())
        moved = graph.keys(LabConfig(ontology_seed=8))
        # ontology feeds (almost) everything: only the random baseline
        # survives an ontology change.
        changed = {name for name in base if base[name] != moved[name]}
        assert "ontology" in changed
        assert "corpus-chemistry" in changed
        assert "bert" in changed
        assert "forest-1-W2V-Chem-naive" in changed
        assert base["embedding-Random"] == moved["embedding-Random"]

    def test_midstream_field_only_touches_downstream(self):
        graph = lab_graph()
        base = graph.keys(LabConfig())
        moved = graph.keys(LabConfig(embedding_epochs=4))
        changed = {name for name in base if base[name] != moved[name]}
        # word2vec/fasttext train with embedding_epochs; GloVe does not.
        assert "embedding-W2V-Chem" in changed
        assert "embedding-BioWordVec" in changed
        assert "task-filter-W2V-Chem" in changed
        assert "forest-2-W2V-Chem-none" in changed
        assert "embedding-GloVe" not in changed
        assert "ontology" not in changed
        assert "bert" not in changed

    def test_unrelated_field_changes_nothing(self):
        graph = lab_graph()
        base = graph.keys(LabConfig())
        moved = graph.keys(LabConfig(lstm_hidden=128, lstm_epochs=9))
        assert base == moved

    def test_version_tag_changes_key(self):
        stage = _stage("a")
        bumped = dataclasses.replace(stage, version="2")
        key_v1 = StageGraph([stage]).key("a", LabConfig())
        key_v2 = StageGraph([bumped]).key("a", LabConfig())
        assert key_v1 != key_v2

    def test_dep_key_change_propagates(self):
        upstream = _stage("up")
        downstream = _stage("down", deps=("up",))
        base = StageGraph([upstream, downstream]).keys(LabConfig())
        bumped = StageGraph(
            [dataclasses.replace(upstream, version="2"), downstream]
        ).keys(LabConfig())
        assert base["up"] != bumped["up"]
        assert base["down"] != bumped["down"]
