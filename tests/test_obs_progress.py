"""Tests for the stderr progress emitter (repro.obs.progress)."""

import io

import pytest

from repro.obs import progress
from repro.obs.progress import (
    StageProgress,
    emit,
    format_rate,
    progress_enabled,
)


@pytest.fixture(autouse=True)
def restore_verbosity():
    was = progress_enabled()
    yield
    if was:
        progress.enable_progress()
    else:
        progress.disable_progress()


class TestFormatRate:
    def test_normal(self):
        assert format_rate(50, 2.0, "steps") == "25.0 steps/s"

    def test_fast_rates_drop_decimals(self):
        assert format_rate(1000, 2.0, "triples") == "500 triples/s"

    def test_zero_seconds(self):
        assert format_rate(10, 0.0) == "items/s n/a"


class TestEmit:
    def test_silent_when_disabled(self):
        progress.disable_progress()
        stream = io.StringIO()
        emit("stage", "message", stream=stream)
        assert stream.getvalue() == ""

    def test_emits_when_enabled(self):
        progress.enable_progress()
        stream = io.StringIO()
        emit("bert.pretrain", "epoch done", stream=stream, loss=0.52, epoch=1)
        line = stream.getvalue()
        assert line.startswith("[repro] bert.pretrain: epoch done")
        assert "loss=0.52" in line and "epoch=1" in line

    def test_fields_only(self):
        progress.enable_progress()
        stream = io.StringIO()
        emit("stage", stream=stream, n=3)
        assert stream.getvalue() == "[repro] stage: n=3\n"


class TestStageProgress:
    def test_counts_even_when_silent(self):
        progress.disable_progress()
        stream = io.StringIO()
        with StageProgress("stage", unit="steps", stream=stream) as tracker:
            tracker.advance(3)
            tracker.advance(2)
        assert tracker.count == 5
        assert stream.getvalue() == ""

    def test_emits_start_and_final_rate(self):
        progress.enable_progress()
        stream = io.StringIO()
        with StageProgress("glove", unit="entries", stream=stream) as tracker:
            tracker.advance(100)
        output = stream.getvalue()
        assert "[repro] glove: started" in output
        assert "100 entries in" in output
        assert "entries/s" in output
