"""Engine, suppression, reporter and quick-check tests — plus the
self-check: the shipped tree must lint clean, fast."""

import json
import textwrap

import pytest

from repro.obs import manifest as manifest_mod
from repro.statcheck import (
    CYCLE_RULE,
    FAMILIES,
    REPORT_FORMAT,
    StatcheckError,
    SYNTAX_RULE,
    catalog,
    default_rules,
    default_target,
    discover_files,
    lint_source,
    quick_check,
    record_inventory,
    render_json,
    render_text,
    run_lint,
    select_rules,
)

BAD_SNIPPET = textwrap.dedent(
    """
    import random

    def pick(xs):
        return random.choice(xs)
    """
)


class TestSuppressions:
    def test_same_line_comment_suppresses(self):
        report = lint_source(
            "import random\n"
            "x = random.random()  # statcheck: ignore[DET001] - fixture\n"
        )
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["DET001"]

    def test_standalone_comment_above_suppresses(self):
        report = lint_source(
            "import random\n"
            "# statcheck: ignore[DET001] - fixture\n"
            "x = random.random()\n"
        )
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["DET001"]

    def test_suppression_is_per_rule(self):
        report = lint_source(
            "import random, time\n"
            "x = (random.random(), time.time())"
            "  # statcheck: ignore[DET001] - only the RNG\n"
        )
        assert [f.rule for f in report.findings] == ["DET003"]
        assert [f.rule for f in report.suppressed] == ["DET001"]

    def test_several_ids_in_one_comment(self):
        report = lint_source(
            "import random, time\n"
            "x = (random.random(), time.time())"
            "  # statcheck: ignore[DET001, DET003] - fixture\n"
        )
        assert report.ok
        assert sorted(f.rule for f in report.suppressed) == [
            "DET001", "DET003",
        ]

    def test_comment_elsewhere_does_not_suppress(self):
        report = lint_source(
            "# statcheck: ignore[DET001] - too far away\n"
            "import random\n"
            "x = random.random()\n"
        )
        assert [f.rule for f in report.findings] == ["DET001"]


class TestEngine:
    def test_syntax_error_reported_as_finding(self):
        report = lint_source("def broken(:\n")
        assert [f.rule for f in report.findings] == [SYNTAX_RULE]

    def test_discover_files_rejects_missing_path(self):
        with pytest.raises(StatcheckError, match="no such file"):
            discover_files(["/no/such/statcheck/target"])

    def test_run_lint_on_directory(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(BAD_SNIPPET)
        report = run_lint([tmp_path])
        assert not report.ok
        assert report.n_files == 2
        assert report.counts_by_rule() == {"DET001": 1}

    def test_inventory_groups_rule_then_path(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_SNIPPET)
        report = run_lint([tmp_path])
        inventory = report.inventory()
        assert list(inventory) == ["DET001"]
        (path, count), = inventory["DET001"].items()
        assert path.endswith("bad.py") and count == 1

    def test_select_rules_by_family_and_id(self):
        dets = select_rules(["determinism"])
        assert {r.id for r in dets} == set(FAMILIES["determinism"])
        mixed = select_rules(["concurrency", "RES001"])
        assert {r.id for r in mixed} == set(FAMILIES["concurrency"]) | {
            "RES001"
        }
        with pytest.raises(StatcheckError, match="unknown rule"):
            select_rules(["bogus"])

    def test_catalog_documents_every_rule(self):
        from repro.statcheck.flow import FLOW_RULE_IDS

        entries = catalog()
        assert len(entries) == len(default_rules()) + len(FLOW_RULE_IDS)
        assert {e["id"] for e in entries} >= set(FLOW_RULE_IDS)
        for entry in entries:
            assert entry["id"] and entry["rationale"] and entry["example"]


class TestReporters:
    def make_report(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_SNIPPET)
        return run_lint([tmp_path])

    def test_render_text_lists_findings_and_summary(self, tmp_path):
        text = render_text(self.make_report(tmp_path))
        assert "DET001" in text
        assert "1 finding(s)" in text
        assert "[DET001=1]" in text

    def test_render_json_is_stable_and_tagged(self, tmp_path):
        document = render_json(self.make_report(tmp_path))
        assert document["format"] == REPORT_FORMAT
        assert document["ok"] is False
        assert document["findings"][0]["rule"] == "DET001"
        assert document["inventory"]["DET001"]
        json.dumps(document, sort_keys=True)  # must be JSON-serialisable as-is

    def test_record_inventory_lands_in_manifest_context(self, tmp_path):
        manifest_mod.clear_context()
        try:
            record_inventory(self.make_report(tmp_path), n_quick=0)
            context = manifest_mod.build_manifest()["context"]
            assert context["lint"]["n_findings"] == 1
            assert context["lint"]["per_rule"] == {"DET001": 1}
            assert context["lint"]["n_quick_findings"] == 0
        finally:
            manifest_mod.clear_context()


class TestQuickCheck:
    def test_clean_package_passes(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("from pkg.a import f\n")
        (pkg / "a.py").write_text("def f():\n    return 1\n")
        assert quick_check([tmp_path]) == []

    def test_compile_error_reported(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        findings = quick_check([tmp_path])
        assert [f.rule for f in findings] == [SYNTAX_RULE]

    def test_module_level_cycle_detected(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("from pkg.b import f\n\ndef g():\n    return f()\n")
        (pkg / "b.py").write_text("from pkg.a import g\n\ndef f():\n    return g()\n")
        findings = quick_check([tmp_path])
        assert [f.rule for f in findings] == [CYCLE_RULE]
        assert "pkg.a -> pkg.b" in findings[0].message

    def test_function_level_import_breaks_cycle(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("from pkg.b import f\n")
        (pkg / "b.py").write_text(
            "def f():\n    from pkg.a import g\n    return g\n"
        )
        assert quick_check([tmp_path]) == []

    def test_submodule_import_is_not_a_package_cycle(self, tmp_path):
        # `__init__` re-exporting submodules that themselves import sibling
        # submodules via `from pkg import sibling` is the shipped layout —
        # it must not read as a cycle through the package __init__.
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("from pkg.a import f\n")
        (pkg / "a.py").write_text("from pkg import b\n\ndef f():\n    return b\n")
        (pkg / "b.py").write_text("x = 1\n")
        assert quick_check([tmp_path]) == []


class TestSelfCheck:
    def test_shipped_tree_lints_clean_and_fast(self):
        # The default run includes the whole-program flow pass and stale
        # suppression detection: the shipped tree must be clean on all
        # three ledgers, inside the CI time budget.
        report = run_lint()
        assert report.findings == []
        assert report.stale == []
        assert report.n_files > 80
        assert report.duration_s < 30.0

    def test_shipped_tree_quick_checks_clean(self):
        assert quick_check([default_target()]) == []
