"""Tests for mini-BERT: model, MLM pretraining, fine-tuning."""

import numpy as np
import pytest

from repro.bert.finetune import FineTuneConfig, fine_tune, triple_to_words
from repro.bert.model import BertConfig, MiniBert
from repro.bert.pretrain import PretrainConfig, _apply_masking, pretrain_mlm
from repro.bert.wordpiece import train_wordpiece
from repro.core.triples import LabeledTriple
from repro.ontology.relations import IS_A

CORPUS = [
    ["alpha", "beta", "gamma", "delta"],
    ["beta", "gamma", "alpha"],
    ["delta", "alpha", "beta", "gamma", "beta"],
] * 12

TINY = BertConfig(d_model=16, n_heads=2, n_layers=2, d_ff=32, max_len=16,
                  dropout=0.0, seed=1)


@pytest.fixture(scope="module")
def tokenizer():
    return train_wordpiece(CORPUS, vocab_size=60)


@pytest.fixture(scope="module")
def pretrained(tokenizer):
    return pretrain_mlm(
        CORPUS, tokenizer, TINY, PretrainConfig(epochs=4, batch_size=8, seed=1)
    )


class TestMiniBert:
    def test_pad_batch(self, tokenizer):
        model = MiniBert(tokenizer, TINY)
        ids, mask = model.pad_batch([[1, 2, 3], [1, 2]])
        assert ids.shape == (2, 3)
        assert mask.tolist() == [[1, 1, 1], [1, 1, 0]]
        assert ids[1, 2] == tokenizer.pad_id

    def test_pad_batch_clips_to_max_len(self, tokenizer):
        model = MiniBert(tokenizer, TINY)
        ids, mask = model.pad_batch([list(range(40))])
        assert ids.shape[1] == TINY.max_len

    def test_classify_shapes(self, tokenizer):
        model = MiniBert(tokenizer, TINY)
        ids, mask = model.pad_batch([[2, 5, 3], [2, 6, 7, 3]])
        logits = model.forward_classify(ids, mask)
        assert logits.shape == (2, 2)

    def test_cls_embedding_shape_and_determinism(self, pretrained):
        a = pretrained.cls_embedding(["alpha", "beta"])
        b = pretrained.cls_embedding(["alpha", "beta"])
        assert a.shape == (TINY.d_model,)
        assert np.allclose(a, b)

    def test_cls_embedding_differs_by_input(self, pretrained):
        a = pretrained.cls_embedding(["alpha"])
        b = pretrained.cls_embedding(["delta", "delta"])
        assert not np.allclose(a, b)


class TestMasking:
    def test_masking_statistics(self, tokenizer):
        rng = np.random.default_rng(0)
        ids = rng.integers(5, len(tokenizer), size=(40, 20))
        mask = np.ones_like(ids, dtype=float)
        masked, labels = _apply_masking(ids, mask, tokenizer, 0.15, rng)
        selected = labels != -100
        rate = selected.mean()
        assert 0.08 < rate < 0.25
        # labels hold the original ids at selected positions
        assert np.all(labels[selected] == ids[selected])
        # a good share of selected positions actually carry [MASK]
        mask_share = (masked[selected] == tokenizer.mask_id).mean()
        assert 0.6 < mask_share < 0.95

    def test_specials_never_masked(self, tokenizer):
        rng = np.random.default_rng(0)
        ids = np.full((10, 8), tokenizer.cls_id)
        mask = np.ones_like(ids, dtype=float)
        _, labels = _apply_masking(ids, mask, tokenizer, 0.9, rng)
        assert np.all(labels == -100)


class TestPretraining:
    def test_loss_decreases(self, pretrained):
        losses = pretrained.pretrain_losses
        assert len(losses) == 4
        assert losses[-1] < losses[0]

    def test_returns_eval_mode(self, pretrained):
        assert pretrained.training is False

    def test_empty_corpus_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            pretrain_mlm([], tokenizer, TINY)


def make_triples(n, flip=False):
    """Linearly separable toy task: 'alpha' subjects are positive."""
    triples = []
    for i in range(n):
        positive = i % 2 == 0
        subject = "alpha alpha" if positive else "delta delta"
        label = 1 if positive else 0
        if flip:
            label = 1 - label
        triples.append(
            LabeledTriple(f"s{i}", subject, IS_A, f"o{i}", "gamma", label)
        )
    return triples


class TestFineTuning:
    def test_learns_separable_task(self, pretrained):
        train = make_triples(120)
        test = make_triples(30)
        classifier = fine_tune(
            pretrained,
            train,
            FineTuneConfig(epochs=6, learning_rate=2e-3, seed=1),
            validation_triples=test,
        )
        accuracy = classifier.history[-1]["validation_accuracy"]
        assert accuracy > 0.9

    def test_pretrained_model_not_mutated(self, pretrained):
        before = pretrained.encoder.token_emb.weight.value.copy()
        fine_tune(pretrained, make_triples(20), FineTuneConfig(epochs=1, seed=0))
        assert np.allclose(before, pretrained.encoder.token_emb.weight.value)

    def test_predict_proba_in_unit_interval(self, pretrained):
        classifier = fine_tune(
            pretrained, make_triples(20), FineTuneConfig(epochs=1, seed=0)
        )
        probs = classifier.predict_proba(make_triples(10))
        assert np.all((probs >= 0) & (probs <= 1))

    def test_empty_train_rejected(self, pretrained):
        with pytest.raises(ValueError):
            fine_tune(pretrained, [])

    def test_triple_to_words_includes_separators(self):
        triple = LabeledTriple("a", "Butanoic Acid", IS_A, "b", "Fatty Acid", 1)
        words = triple_to_words(triple)
        assert words.count("[SEP]") == 2
        assert "butanoic" in words
