"""Tests for the head-to-head comparison runner."""

import numpy as np
import pytest

from repro.core.comparison import ComparisonRow, evaluate_paradigm, head_to_head
from repro.core.datasets import train_test_split_9_1
from repro.core.paradigms import ICLParadigm, Paradigm, RandomForestParadigm
from repro.llm.client import EchoClient
from repro.ml.forest import RandomForestConfig


class _FixedParadigm(Paradigm):
    """Returns a pre-set decision list regardless of input."""

    def __init__(self, decisions):
        super().__init__("fixed")
        self._decisions = decisions

    def fit(self, train):
        return self

    def classify(self, triples):
        return list(self._decisions[: len(triples)])


class TestEvaluateParadigm:
    def test_perfect_predictions(self, task1_dataset):
        test = list(task1_dataset)[:10]
        paradigm = _FixedParadigm([t.label for t in test])
        row = evaluate_paradigm(paradigm, test)
        assert row.accuracy == 1.0
        assert row.f1 == 1.0
        assert row.n_unclassified == 0

    def test_unclassified_counts_against_accuracy_only(self, task1_dataset):
        test = list(task1_dataset)[:10]
        decisions = [t.label for t in test]
        decisions[0] = None  # one abstention
        row = evaluate_paradigm(_FixedParadigm(decisions), test)
        assert row.accuracy == pytest.approx(0.9)
        assert row.f1 == 1.0  # classified subset is perfect
        assert row.n_unclassified == 1

    def test_all_unclassified(self, task1_dataset):
        test = list(task1_dataset)[:6]
        row = evaluate_paradigm(_FixedParadigm([None] * 6), test)
        assert row.accuracy == 0.0
        assert row.f1 == 0.0
        assert row.n_unclassified == 6

    def test_empty_test_rejected(self):
        with pytest.raises(ValueError):
            evaluate_paradigm(_FixedParadigm([]), [])

    def test_as_row(self, task1_dataset):
        test = list(task1_dataset)[:4]
        row = evaluate_paradigm(_FixedParadigm([t.label for t in test]), test)
        assert row.as_row()["paradigm"] == "fixed"


class TestHeadToHead:
    def test_fits_and_ranks(self, lab, task1_dataset):
        split = train_test_split_9_1(task1_dataset, seed=0)
        train = list(split.train)[:300]
        test = list(split.test)[:60]
        paradigms = [
            RandomForestParadigm(
                lab.embedding("W2V-Chem"),
                config=RandomForestConfig(n_estimators=8, seed=0),
            ),
            ICLParadigm(EchoClient("True"), seed=0),
        ]
        rows = head_to_head(paradigms, train, test)
        assert len(rows) == 2
        by_name = {row.paradigm: row for row in rows}
        assert by_name["ICL(EchoClient)"].accuracy == pytest.approx(
            np.mean([t.label for t in test])
        )

    def test_fit_false_skips_training(self, task1_dataset):
        test = list(task1_dataset)[:5]
        paradigm = _FixedParadigm([t.label for t in test])
        rows = head_to_head([paradigm], [], test, fit=False)
        assert rows[0].accuracy == 1.0
