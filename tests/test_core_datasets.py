"""Tests for Dataset operations and task-dataset construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datasets import (
    Dataset,
    build_task_dataset,
    train_test_split_9_1,
    train_val_test_split_8_1_1,
)
from repro.core.triples import LabeledTriple
from repro.ontology.relations import HAS_ROLE, IS_A


def toy_triples(n_pos, n_neg):
    triples = []
    for i in range(n_pos):
        triples.append(
            LabeledTriple(f"s{i}", f"sub {i}", IS_A, f"o{i}", f"obj {i}", 1)
        )
    for i in range(n_neg):
        triples.append(
            LabeledTriple(f"ns{i}", f"nsub {i}", HAS_ROLE, f"no{i}", f"nobj {i}", 0)
        )
    return triples


class TestDataset:
    def test_counts_and_classes(self):
        dataset = Dataset(toy_triples(6, 4))
        assert len(dataset) == 10
        assert dataset.counts() == (6, 4)
        assert len(dataset.positives()) == 6
        assert len(dataset.negatives()) == 4

    def test_labels_alignment(self):
        dataset = Dataset(toy_triples(2, 2))
        assert dataset.labels().tolist() == [t.label for t in dataset]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset([])

    def test_restrict_to_relation(self):
        dataset = Dataset(toy_triples(3, 3))
        subset = dataset.restrict_to_relation("is_a")
        assert len(subset) == 3
        with pytest.raises(ValueError):
            dataset.restrict_to_relation("has_part")

    def test_shuffled_is_permutation(self):
        dataset = Dataset(toy_triples(5, 5))
        shuffled = dataset.shuffled(seed=1)
        assert sorted(t.key() for t in shuffled) == sorted(t.key() for t in dataset)
        assert [t.key() for t in shuffled] != [t.key() for t in dataset]

    def test_sample_exact_counts(self):
        dataset = Dataset(toy_triples(20, 20))
        sample = dataset.sample(5, 3, seed=2)
        assert sample.counts() == (5, 3)

    def test_sample_too_large_raises(self):
        dataset = Dataset(toy_triples(2, 2))
        with pytest.raises(ValueError, match="requested"):
            dataset.sample(5, 1)

    def test_sample_deterministic(self):
        dataset = Dataset(toy_triples(30, 30))
        a = dataset.sample(4, 4, seed=3)
        b = dataset.sample(4, 4, seed=3)
        assert [t.key() for t in a] == [t.key() for t in b]


class TestStratifiedSplit:
    def test_fractions_must_sum_to_one(self):
        dataset = Dataset(toy_triples(10, 10))
        with pytest.raises(ValueError):
            dataset.stratified_split([0.5, 0.4])

    def test_partition_no_overlap(self):
        dataset = Dataset(toy_triples(50, 50))
        parts = dataset.stratified_split([0.7, 0.3], seed=1)
        keys = [set(t.key() for t in part) for part in parts]
        assert not keys[0] & keys[1]
        assert len(keys[0]) + len(keys[1]) == 100

    def test_class_ratio_preserved(self):
        dataset = Dataset(toy_triples(80, 40))
        train, test = dataset.stratified_split([0.75, 0.25], seed=1)
        train_pos, train_neg = train.counts()
        assert train_pos == 60 and train_neg == 30

    @settings(deadline=None, max_examples=25)
    @given(st.integers(10, 40), st.integers(10, 40), st.integers(0, 1000))
    def test_split_partitions_exactly(self, n_pos, n_neg, seed):
        dataset = Dataset(toy_triples(n_pos, n_neg))
        parts = dataset.stratified_split([0.5, 0.3, 0.2], seed=seed)
        total = sum(len(p) for p in parts)
        assert total == len(dataset)
        all_keys = sorted(k for p in parts for k in (t.key() for t in p))
        assert all_keys == sorted(t.key() for t in dataset)


class TestTaskDatasetConstruction:
    @pytest.mark.parametrize("task", [1, 2, 3])
    def test_roughly_balanced(self, ontology, task):
        dataset = build_task_dataset(ontology, task, seed=42)
        n_pos, n_neg = dataset.counts()
        assert n_pos > 0 and n_neg > 0
        assert abs(n_pos - n_neg) / n_pos < 0.25

    def test_named_by_task(self, task1_dataset):
        assert task1_dataset.name.startswith("task1")

    def test_9_1_split_sizes(self, task1_dataset):
        split = train_test_split_9_1(task1_dataset, seed=0)
        ratio = len(split.train) / len(split.test)
        assert 8.0 < ratio < 10.0

    def test_8_1_1_split_sizes(self, task1_dataset):
        split = train_val_test_split_8_1_1(task1_dataset, seed=0)
        assert split.validation is not None
        assert len(split.train) > 6 * len(split.test)
        total = len(split.train) + len(split.test) + len(split.validation)
        assert total == len(task1_dataset)
