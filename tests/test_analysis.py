"""Tests for calibration, error breakdowns and cross-model agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.agreement_matrix import cohens_kappa, pairwise_agreement
from repro.analysis.calibration import (
    CalibrationReport,
    expected_calibration_error,
    reliability_curve,
)
from repro.analysis.errors import error_breakdown_by_relation
from repro.core.triples import LabeledTriple
from repro.ontology.relations import HAS_ROLE, IS_A


class TestReliabilityCurve:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        probs = rng.random(20_000)
        labels = (rng.random(20_000) < probs).astype(int)
        curve = reliability_curve(probs, labels, n_bins=10)
        for mean_p, frac_pos, count in curve:
            assert abs(mean_p - frac_pos) < 0.05
        assert expected_calibration_error(probs, labels) < 0.02

    def test_overconfident_model_high_ece(self):
        probs = np.array([0.99] * 100)
        labels = np.array([1] * 50 + [0] * 50)
        assert expected_calibration_error(probs, labels) > 0.4

    def test_counts_sum_to_total(self):
        rng = np.random.default_rng(1)
        probs = rng.random(500)
        labels = rng.integers(0, 2, 500)
        curve = reliability_curve(probs, labels)
        assert sum(count for _, _, count in curve) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_curve([], [])
        with pytest.raises(ValueError):
            reliability_curve([1.5], [1])
        with pytest.raises(ValueError):
            reliability_curve([0.5], [2])
        with pytest.raises(ValueError):
            reliability_curve([0.5], [1], n_bins=1)

    def test_report_bundle(self):
        report = CalibrationReport.from_predictions([0.9, 0.1], [1, 0])
        assert report.n_samples == 2
        assert report.ece == pytest.approx(0.1)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000))
    def test_ece_bounded(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.random(50)
        labels = rng.integers(0, 2, 50)
        assert 0.0 <= expected_calibration_error(probs, labels) <= 1.0


class TestErrorBreakdown:
    def make(self):
        triples = [
            LabeledTriple("a", "a", IS_A, "b", "b", 1),
            LabeledTriple("c", "c", IS_A, "d", "d", 0),
            LabeledTriple("e", "e", HAS_ROLE, "f", "f", 1),
            LabeledTriple("g", "g", HAS_ROLE, "h", "h", 1),
        ]
        return triples

    def test_per_relation_metrics(self):
        triples = self.make()
        predictions = [1, 0, 1, 0]
        breakdown = error_breakdown_by_relation(triples, predictions)
        assert breakdown["is_a"]["accuracy"] == 1.0
        assert breakdown["has_role"]["accuracy"] == 0.5
        assert breakdown["is_a"]["support"] == 2

    def test_unclassified_handling(self):
        triples = self.make()
        predictions = [1, None, 1, 1]
        breakdown = error_breakdown_by_relation(triples, predictions)
        assert breakdown["is_a"]["unclassified"] == 1
        assert breakdown["is_a"]["accuracy"] == 0.5  # None counts as wrong
        assert breakdown["has_role"]["f1"] == 1.0

    def test_min_support_filter(self):
        triples = self.make()
        breakdown = error_breakdown_by_relation(
            triples, [1, 0, 1, 1], min_support=3
        )
        assert "is_a" not in breakdown
        assert "has_role" not in breakdown  # only 2 each

    def test_validation(self):
        with pytest.raises(ValueError):
            error_breakdown_by_relation([], [])
        with pytest.raises(ValueError):
            error_breakdown_by_relation(self.make(), [1])


class TestAgreement:
    def test_perfect_agreement(self):
        assert cohens_kappa([1, 0, 1], [1, 0, 1]) == pytest.approx(1.0)

    def test_chance_agreement_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 4000).tolist()
        b = rng.integers(0, 2, 4000).tolist()
        assert abs(cohens_kappa(a, b)) < 0.06

    def test_systematic_disagreement_negative(self):
        a = [0, 1] * 20
        b = [1, 0] * 20
        assert cohens_kappa(a, b) < -0.9

    def test_none_is_a_category(self):
        a = [1, None, 0]
        b = [1, None, 0]
        assert cohens_kappa(a, b) == pytest.approx(1.0)

    def test_pairwise_matrix(self):
        decisions = {
            "rf": [1, 0, 1, 0],
            "gpt": [1, 0, 1, 1],
            "ft": [0, 1, 0, 1],
        }
        agreement = pairwise_agreement(decisions)
        assert set(agreement) == {("ft", "gpt"), ("ft", "rf"), ("gpt", "rf")}
        assert agreement[("gpt", "rf")] > agreement[("ft", "rf")]

    def test_validation(self):
        with pytest.raises(ValueError):
            cohens_kappa([1], [1, 0])
        with pytest.raises(ValueError):
            cohens_kappa([], [])
        with pytest.raises(ValueError):
            pairwise_agreement({"only": [1, 0]})
        with pytest.raises(ValueError):
            pairwise_agreement({"a": [1], "b": [1, 0]})
