"""Tests for repro.resilience.faults: FaultPlan, FaultyClient, FaultClock."""

import pytest

from repro.llm.client import ChatClientError, EchoClient
from repro.resilience.faults import (
    ERROR_FAULTS,
    FAULT_KINDS,
    FaultClock,
    FaultPlan,
    FaultSpec,
    FaultyClient,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("segfault", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("timeout", 1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("timeout", -0.1)
        FaultSpec("timeout", 0.0)
        FaultSpec("timeout", 1.0)


class TestFaultPlanParse:
    def test_single(self):
        plan = FaultPlan.parse("timeout:0.1")
        assert [(s.kind, s.rate) for s in plan.specs] == [("timeout", 0.1)]

    def test_multiple_with_spaces_and_case(self):
        plan = FaultPlan.parse(" Timeout:0.1 , HTTP500:0.05 ")
        assert [s.kind for s in plan.specs] == ["timeout", "http500"]

    def test_describe_round_trips(self):
        text = "timeout:0.1,http500:0.05,garbage:0.02"
        assert FaultPlan.parse(text).describe() == text

    def test_bad_grammar(self):
        with pytest.raises(ValueError, match="expected kind:rate"):
            FaultPlan.parse("timeout")
        with pytest.raises(ValueError, match="bad fault rate"):
            FaultPlan.parse("timeout:lots")
        with pytest.raises(ValueError, match="empty fault spec"):
            FaultPlan.parse(" , ")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode:0.5")

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([])

    def test_max_consecutive_validated(self):
        with pytest.raises(ValueError):
            FaultPlan([FaultSpec("timeout", 0.1)], max_consecutive=0)


class TestFaultPlanDraw:
    def test_deterministic_per_index(self):
        plan = FaultPlan.parse("timeout:0.3,http500:0.2", seed=5)
        draws = [plan.draw(i) for i in range(200)]
        assert draws == [plan.draw(i) for i in range(200)]

    def test_seed_changes_schedule(self):
        a = [FaultPlan.parse("timeout:0.3", seed=1).draw(i) for i in range(200)]
        b = [FaultPlan.parse("timeout:0.3", seed=2).draw(i) for i in range(200)]
        assert a != b

    def test_rates_roughly_respected(self):
        plan = FaultPlan.parse("timeout:0.25", seed=0)
        hits = sum(1 for i in range(2000) if plan.draw(i) == "timeout")
        assert 0.18 < hits / 2000 < 0.32

    def test_rate_zero_never_fires(self):
        plan = FaultPlan.parse("timeout:0.0", seed=0)
        assert all(plan.draw(i) is None for i in range(500))


class TestFaultyClient:
    def client(self, spec, **kwargs):
        return FaultyClient(EchoClient("True"), FaultPlan.parse(spec, **kwargs))

    def test_name_delegates(self):
        assert self.client("timeout:0.1").name == "EchoClient"

    def test_error_kinds_raise_chat_client_error(self):
        expectations = {
            "timeout:1.0": ("timeout", None),
            "http429:1.0": ("http", 429),
            "http500:1.0": ("http", 500),
            "malformed:1.0": ("malformed", None),
        }
        for spec, (kind, status) in expectations.items():
            client = self.client(spec)
            with pytest.raises(ChatClientError) as exc:
                client.complete("p")
            assert exc.value.kind == kind
            assert exc.value.status == status
            assert exc.value.retryable

    def test_error_faults_do_not_consume_completions(self):
        inner = EchoClient("True")
        inner_calls = []
        original = inner.complete
        inner.complete = lambda p: (inner_calls.append(p), original(p))[1]
        client = FaultyClient(inner, FaultPlan.parse("timeout:1.0"))
        for _ in range(3):
            with pytest.raises(ChatClientError):
                client.complete("p")
        assert inner_calls == []  # raised before touching the wrapped client

    def test_max_consecutive_caps_error_runs(self):
        client = self.client("timeout:1.0")  # would fail every call
        failures = 0
        for _ in range(3):
            with pytest.raises(ChatClientError):
                client.complete("p")
            failures += 1
        # Fourth call exceeds max_consecutive=3 and must succeed.
        assert client.complete("p") == "True"
        assert client.injected == {"timeout": 3}

    def test_corruption_faults_consume_and_mangle(self):
        garbage = self.client("garbage:1.0")
        out = garbage.complete("p")
        assert out != "True" and "garbage" in out

        truncated = FaultyClient(
            EchoClient("a perfectly reasonable completion"),
            FaultPlan.parse("truncated:1.0"),
        )
        out = truncated.complete("p")
        assert out == "a perfectly reasonable completion"[
            : len("a perfectly reasonable completion") // 2
        ]

    def test_tallies_and_call_count(self):
        client = self.client("timeout:0.3", seed=3)
        for _ in range(50):
            try:
                client.complete("p")
            except ChatClientError:
                pass
        assert client.calls == 50
        assert sum(client.injected.values()) > 0
        assert set(client.injected) <= set(FAULT_KINDS)

    def test_deterministic_injection_sequence(self):
        def run():
            client = self.client("timeout:0.3,garbage:0.2", seed=9)
            outcomes = []
            for _ in range(80):
                try:
                    outcomes.append(client.complete("p"))
                except ChatClientError as error:
                    outcomes.append(f"err:{error.kind}")
            return outcomes

        assert run() == run()

    def test_skip_delivery_delegates(self):
        seen = []
        inner = EchoClient("True")
        inner.skip_delivery = lambda p: seen.append(p)
        FaultyClient(inner, FaultPlan.parse("timeout:0.1")).skip_delivery("p")
        assert seen == ["p"]

    def test_error_faults_constant_matches_kinds(self):
        assert ERROR_FAULTS < set(FAULT_KINDS)


class TestFaultClock:
    def test_sleep_advances_and_records(self):
        clock = FaultClock(start=10.0)
        assert clock.monotonic() == 10.0
        clock.sleep(2.5)
        clock.sleep(0.5)
        assert clock.monotonic() == 13.0
        assert clock.sleeps == [2.5, 0.5]

    def test_advance_does_not_record(self):
        clock = FaultClock()
        clock.advance(5.0)
        assert clock.monotonic() == 5.0
        assert clock.sleeps == []


class TestCompleteIndexedFaults:
    """Content-keyed fault draws: deterministic whatever the call order."""

    def plan(self, seed=0):
        return FaultPlan.parse("timeout:0.3,http500:0.2", seed=seed)

    def test_fault_schedule_is_thread_order_independent(self):
        prompts = [f"Q: Is the triple (e{i}, is_a, c) correct?" for i in range(8)]

        def outcomes(order):
            client = FaultyClient(EchoClient(), self.plan())
            seen = {}
            for index in order:
                prompt = prompts[index]
                try:
                    seen[index] = client.complete_indexed(prompt, 0)
                except ChatClientError as error:
                    seen[index] = f"error:{error.kind}"
            return seen

        forward = outcomes(range(8))
        backward = outcomes(reversed(range(8)))
        assert forward == backward

    def test_attempts_are_counted_per_delivery(self):
        client = FaultyClient(EchoClient(), self.plan())
        prompt = "Q: Is the triple (a, is_a, b) correct?"
        results = []
        for _ in range(client.plan.max_consecutive + 1):
            try:
                results.append(client.complete_indexed(prompt, 0))
            except ChatClientError as error:
                results.append(f"error:{error.kind}")
        # Faults are bounded per delivery: by max_consecutive+1 attempts the
        # delivery must have gotten a clean completion through.
        assert "True" in results

    def test_repeats_draw_independent_schedules(self):
        prompt = "Q: Is the triple (a, is_a, b) correct?"

        def first_attempt_outcome(repeat):
            client = FaultyClient(EchoClient(), self.plan(seed=5))
            try:
                client.complete_indexed(prompt, repeat)
                return "clean"
            except ChatClientError as error:
                return error.kind

        outcomes = {r: first_attempt_outcome(r) for r in range(12)}
        # Deterministic per repeat...
        assert outcomes == {r: first_attempt_outcome(r) for r in range(12)}
        # ...and not one global coin: with a 44% combined rate over 12
        # repeats, both clean and faulted first attempts must appear.
        assert len(set(outcomes.values())) > 1

    def test_corruption_faults_still_consume_a_completion(self):
        plan = FaultPlan.parse("garbage:1.0", seed=0)
        inner = EchoClient("a perfectly good completion")
        client = FaultyClient(inner, plan)
        text = client.complete_indexed("Q: anything", 0)
        assert text != "a perfectly good completion"
        assert client.injected.get("garbage", 0) >= 1
