"""Tests for the span profiler (repro.perf.profiler)."""

import pytest

from repro.obs import manifest as obs_manifest
from repro.obs import trace
from repro.obs.trace import get_tracer, span
from repro.perf import profiler
from repro.perf.profiler import SpanProfiler, env_enables_profile


@pytest.fixture(autouse=True)
def clean_state():
    """Isolate each test from the process-wide tracer/profiler state."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    profiler.uninstall()
    trace.reset()
    tracer.enabled = True
    yield
    profiler.uninstall()
    tracer.enabled = was_enabled
    trace.reset()


def _busy(n=20_000):
    return sum(i * i for i in range(n))


class TestEnvGate:
    def test_disabled_by_default(self):
        assert env_enables_profile({}) is False
        assert env_enables_profile({"REPRO_PROFILE": "0"}) is False
        assert env_enables_profile({"REPRO_PROFILE": "off"}) is False

    def test_enabled_by_truthy_values(self):
        assert env_enables_profile({"REPRO_PROFILE": "1"}) is True
        assert env_enables_profile({"REPRO_PROFILE": "yes"}) is True

    def test_configure_from_env_noop_when_unset(self):
        assert profiler.configure_from_env({}) is False
        assert profiler.installed() is None

    def test_configure_from_env_installs(self):
        assert profiler.configure_from_env({"REPRO_PROFILE": "1"}) is True
        assert profiler.installed() is not None
        assert trace.enabled() is True


class TestInstall:
    def test_install_is_idempotent(self):
        first = profiler.install()
        second = profiler.install()
        assert first is second
        assert profiler.installed() is first

    def test_uninstall_detaches_listener_and_provider(self):
        profiler.install()
        profiler.uninstall()
        assert profiler.installed() is None
        with span("quiet"):
            _busy(1_000)
        snapshot = obs_manifest.build_hotspots(
            [root.to_dict() for root in get_tracer().roots()]
        )
        assert "functions" not in snapshot  # provider gone


class TestCapture:
    def test_spans_gain_memory_gauges(self):
        profiler.install()
        with span("outer") as outer:
            keep = bytearray(256 * 1024)
            with span("inner") as inner:
                also = bytearray(64 * 1024)
        assert "mem.alloc_delta_bytes" in outer.gauges
        assert "mem.peak_bytes" in outer.gauges  # outermost only
        assert "mem.alloc_delta_bytes" in inner.gauges
        assert "mem.peak_bytes" not in inner.gauges
        assert outer.gauges["mem.peak_bytes"] > 200_000
        assert keep is not None and also is not None

    def test_functions_profiled_on_outermost_span(self):
        profiled = profiler.install()
        with span("outer"):
            _busy()
        snapshot = profiled.snapshot()
        assert snapshot["functions"], "cProfile captured nothing"
        names = " ".join(row["function"] for row in snapshot["functions"])
        assert "_busy" in names or "genexpr" in names
        assert all(
            row["tottime_s"] >= 0 and row["ncalls"] >= 1
            for row in snapshot["functions"]
        )

    def test_allocations_ranked_per_span(self):
        profiled = profiler.install()
        with span("hungry"):
            keep = bytearray(512 * 1024)
        with span("modest"):
            small = bytearray(1024)
        rows = profiled.snapshot()["allocations"]
        by_span = {row["span"]: row["alloc_bytes"] for row in rows}
        assert by_span["hungry"] > by_span.get("modest", 0)
        assert keep is not None and small is not None

    def test_manifest_gains_hotspot_sections(self):
        profiler.install()
        with span("work"):
            _busy()
        manifest = obs_manifest.build_manifest()
        hotspots = manifest["hotspots"]
        assert hotspots["slowest_stages"]
        assert hotspots["functions"]
        assert hotspots["allocations"]

    def test_profiler_overhead_outside_span_clock(self):
        # A listener that burns time on start/end must not inflate the
        # measured duration (notification happens outside the clock).
        class SlowListener:
            def on_span_start(self, sp):
                _busy(200_000)

            def on_span_end(self, sp):
                _busy(200_000)

        listener = SlowListener()
        get_tracer().add_listener(listener)
        try:
            with span("cheap") as sp:
                pass
            assert sp.duration < 0.05
        finally:
            get_tracer().remove_listener(listener)

    def test_reset_clears_aggregates(self):
        profiled = profiler.install()
        with span("work"):
            _busy()
        profiled.reset()
        snapshot = profiled.snapshot()
        assert snapshot["functions"] == []
        assert snapshot["allocations"] == []


class TestConflicts:
    def test_nested_spans_do_not_double_profile(self):
        profiled = profiler.install()
        with span("outer"):
            with span("inner"):
                _busy()
        # no conflict counter: the inner span never tried to enable
        assert "perf.profiler_conflicts" not in get_tracer().counters()
        assert profiled.snapshot()["functions"]

    def test_profiled_span_sugar(self):
        profiler.install()
        with profiler.profiled_span("bench.toy", benchmark="toy") as sp:
            _busy(1_000)
        assert sp.attrs["benchmark"] == "toy"
        assert "mem.alloc_delta_bytes" in sp.gauges
