"""Tests for the text-table reporting helper."""

import os

import numpy as np
import pytest

from repro.core.reporting import Table, format_cell


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_precision(self):
        assert format_cell(0.123456, precision=3) == "0.123"

    def test_int_and_str(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"

    def test_numpy_float_scalars_respect_precision(self):
        assert format_cell(np.float32(0.5), precision=3) == "0.500"
        assert format_cell(np.float64(0.123456), precision=4) == "0.1235"

    def test_numpy_integer_scalars_render_as_ints(self):
        assert format_cell(np.int64(42)) == "42"
        assert format_cell(np.int32(7)) == "7"

    def test_numpy_scalars_in_table_rows(self):
        table = Table("T", ["count", "score"], precision=2)
        table.add_row(np.int64(3), np.float32(0.25))
        rendered = table.render()
        assert "3" in rendered and "0.25" in rendered
        assert "float32" not in rendered and "np." not in rendered

    def test_bools_keep_their_repr(self):
        assert format_cell(True) == "True"
        assert format_cell(False) == "False"


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["name", "value"])
        table.add_row("a", 1.5)
        table.add_row("longer-name", 2.25)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        # all data lines have equal prefix width up to the second column
        assert lines[4].index("1.5000") == lines[5].index("2.2500")

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("T", [])

    def test_section_rows(self):
        table = Table("T", ["a", "b"])
        table.add_section("group 1")
        table.add_row(1, 2)
        assert "-- group 1 --" in table.render()

    def test_save_creates_directories(self, tmp_path):
        table = Table("T", ["x"])
        table.add_row(7)
        path = tmp_path / "nested" / "out.txt"
        table.save(str(path))
        assert path.read_text().startswith("T\n")

    def test_show_returns_render(self, capsys):
        table = Table("T", ["x"])
        table.add_row(None)
        text = table.show()
        captured = capsys.readouterr()
        assert text in captured.out
        assert "-" in text
