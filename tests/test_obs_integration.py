"""End-to-end observability tests: instrumented pipeline pieces, the
reporting-layer manifest hook, the benchmark-conftest wiring, and the
``repro trace`` CLI renderer."""

import importlib.util
import os

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.reporting import Table
from repro.ml.forest import RandomForest, RandomForestConfig
from repro.obs import trace
from repro.obs.manifest import load_manifest, manifest_path_for
from repro.obs.trace import get_tracer, span
from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like

BENCH_CONFTEST = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "conftest.py"
)


@pytest.fixture(autouse=True)
def clean_state():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    trace.reset()
    yield
    tracer.enabled = was_enabled
    trace.reset()
    obs.progress.disable_progress()


def _fit_tiny_forest():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(40, 6))
    y = (x[:, 0] > 0).astype(np.int64)
    RandomForest(RandomForestConfig(n_estimators=3, max_depth=3)).fit(x, y)


class TestInstrumentation:
    def test_forest_fit_records_span_with_tree_counter(self):
        obs.enable(verbose=False)
        _fit_tiny_forest()
        roots = get_tracer().roots()
        assert [r.name for r in roots] == ["classifier.forest.fit"]
        assert roots[0].counters["trees"] == 3
        assert roots[0].duration > 0

    def test_synthesis_records_entity_counters(self):
        obs.enable(verbose=False)
        synthesize_chebi_like(SynthesisConfig(n_chemical_entities=120, seed=0))
        roots = get_tracer().roots()
        assert roots[0].name == "ontology.synthesis"
        assert roots[0].counters["entities"] > 120
        assert roots[0].counters["statements"] > 0

    def test_lab_memo_spans_nest_stage_spans(self):
        obs.enable(verbose=False)
        from repro.core import Lab, LabConfig

        lab = Lab(LabConfig(n_chemical_entities=120, ontology_seed=1))
        lab.dataset(1)
        roots = get_tracer().roots()
        assert roots[0].name == "lab.dataset-1"
        ontology_span = roots[0].children[0]
        assert ontology_span.name == "lab.ontology"
        assert ontology_span.children[0].name == "ontology.synthesis"

    def test_disabled_pipeline_records_nothing(self):
        get_tracer().enabled = False
        _fit_tiny_forest()
        assert get_tracer().roots() == []
        assert get_tracer().counters() == {}


class TestTableManifestHook:
    def _save_table(self, tmp_path):
        table = Table("T", ["x"])
        table.add_row(1)
        path = tmp_path / "t.txt"
        table.save(str(path))
        return path

    def test_save_writes_manifest_when_enabled(self, tmp_path):
        obs.enable(verbose=False)
        with span("stage"):
            _fit_tiny_forest()
        path = self._save_table(tmp_path)
        sidecar = manifest_path_for(path)
        assert sidecar.exists()
        manifest = load_manifest(sidecar)
        assert manifest["title"] == "T"
        names = [s["name"] for s in manifest["spans"]]
        assert "stage" in names

    def test_save_writes_no_manifest_when_disabled(self, tmp_path):
        get_tracer().enabled = False
        path = self._save_table(tmp_path)
        assert not manifest_path_for(path).exists()


class TestBenchConftestWiring:
    def test_observability_fixture_enables_manifest_emission(self, tmp_path):
        spec = importlib.util.spec_from_file_location(
            "bench_conftest_under_test", BENCH_CONFTEST
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        fixture_fn = module._observability.__wrapped__
        generator = fixture_fn()
        next(generator)  # fixture setup, as pytest would run it
        assert obs.enabled()
        with span("bench.stage"):
            pass
        table = Table("bench table", ["v"])
        table.add_row(0.5)
        table_path = tmp_path / "bench_table.txt"
        table.save(str(table_path))
        sidecar = tmp_path / "bench_table.manifest.json"
        assert sidecar.exists(), "manifest must land next to the table"
        manifest = load_manifest(sidecar)
        assert any(s["name"] == "bench.stage" for s in manifest["spans"])


class TestTraceCLI:
    def test_trace_renders_per_stage_summary(self, tmp_path, capsys):
        obs.enable(verbose=False)
        with span("outer") as sp:
            sp.incr("items", 2)
            with span("inner"):
                pass
        table = Table("T", ["x"])
        table.add_row(1)
        path = tmp_path / "t.txt"
        table.save(str(path))
        capsys.readouterr()

        assert main(["trace", str(manifest_path_for(path))]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "outer" in out and "inner" in out
        assert "per-stage self time" in out
        assert "items=2" in out

    def test_trace_flag_enables_collection(self, tmp_path, capsys):
        get_tracer().enabled = False
        obo = str(tmp_path / "t.obo")
        assert main(["--trace", "synthesize", obo, "--entities", "120"]) == 0
        names = [r.name for r in get_tracer().roots()]
        assert "ontology.synthesis" in names
