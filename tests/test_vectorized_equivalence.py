"""Equivalence tests for the vectorised training hot paths.

Every vectorised kernel introduced by the hot-path refactor is pinned
against a scalar reference implementation (exact where the arithmetic is
order-preserving, 1e-10 otherwise), and the sharded builds are pinned
against their unsharded/merged counterparts — including a byte-level
jobs=1 vs jobs=4 artifact-store comparison through the process executor.
"""

import dataclasses
import hashlib
from collections import Counter

import numpy as np
import pytest

from repro.bert.model import pad_all
from repro.core.experiment import Lab
from repro.embeddings.base import (
    DENSE_SCATTER_MAX,
    build_pairs,
    negative_table,
    pair_shard,
    scatter_add,
    scatter_outer_add,
    sentences_to_ids,
    shard_bounds,
)
from repro.embeddings.fasttext import character_ngrams, ngram_bucket_rows
from repro.embeddings.glove import cooccurrence_arrays, cooccurrence_counts
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.text.vocab import build_vocabulary
from repro.utils.rng import derive_rng, stable_hash
from tests.conftest import MICRO_LAB_CONFIG


def _toy_corpus(n_sentences=80, vocab=60, max_len=14, seed=11):
    rng = np.random.default_rng(seed)
    words = [f"w{i}" for i in range(vocab)]
    return [
        [words[j] for j in rng.integers(0, vocab, rng.integers(2, max_len))]
        for _ in range(n_sentences)
    ]


class TestPairStream:
    def _reference_pairs(self, sentence_ids, window, spans):
        """Per-token scalar loop over the historical dynamic-window rule."""
        pairs = []
        offset = 0
        for ids in sentence_ids:
            n = ids.size
            for i in range(n):
                span = spans[offset + i]
                for d in range(1, span + 1):
                    if i - d >= 0:
                        pairs.append((int(ids[i]), int(ids[i - d])))
                    if i + d < n:
                        pairs.append((int(ids[i]), int(ids[i + d])))
            offset += n
        return Counter(pairs)

    def test_pair_shard_matches_scalar_reference_multiset(self):
        sentences = _toy_corpus()
        vocabulary = build_vocabulary(sentences, min_count=1)
        sentence_ids = sentences_to_ids(sentences, vocabulary)
        usable = [ids for ids in sentence_ids if ids.size >= 2]
        window = 5
        spans = derive_rng(0, "spans").integers(
            1, window + 1, size=sum(ids.size for ids in usable)
        )
        centers, contexts = pair_shard(
            sentence_ids, window, derive_rng(0, "spans")
        )
        got = Counter(zip(centers.tolist(), contexts.tolist()))
        assert got == self._reference_pairs(usable, window, spans)

    def test_precomputed_shards_equal_direct_build(self):
        sentences = _toy_corpus(seed=3)
        vocabulary = build_vocabulary(sentences, min_count=1)
        sentence_ids = sentences_to_ids(sentences, vocabulary)
        direct = build_pairs(sentence_ids, 4, seed=7, n_shards=4)
        shards = [
            pair_shard(
                sentence_ids[start:stop], 4, derive_rng(7, "sgns-pairs", i, 4)
            )
            for i, (start, stop) in enumerate(
                shard_bounds(len(sentence_ids), 4)
            )
        ]
        merged = build_pairs([], 4, seed=7, n_shards=4, precomputed=shards)
        assert np.array_equal(direct[0], merged[0])
        assert np.array_equal(direct[1], merged[1])


class TestCooccurrence:
    def _reference_counts(self, sentences, vocabulary, window):
        counts = {}
        for sentence in sentences:
            ids = [
                i
                for i in (vocabulary.get_id(t) for t in sentence)
                if i is not None
            ]
            for pos, a in enumerate(ids):
                for d in range(1, window + 1):
                    if pos + d >= len(ids):
                        break
                    b = ids[pos + d]
                    counts[(a, b)] = counts.get((a, b), 0.0) + 1.0 / d
                    counts[(b, a)] = counts.get((b, a), 0.0) + 1.0 / d
        return counts

    def test_matches_scalar_reference(self):
        sentences = _toy_corpus(seed=5)
        vocabulary = build_vocabulary(sentences, min_count=1)
        got = cooccurrence_counts(sentences, vocabulary, 6)
        ref = self._reference_counts(sentences, vocabulary, 6)
        assert set(got) == set(ref)
        assert max(abs(got[k] - ref[k]) for k in ref) < 1e-10

    def test_sharded_build_matches_unsharded(self):
        sentences = _toy_corpus(seed=9)
        vocabulary = build_vocabulary(sentences, min_count=1)
        one = cooccurrence_arrays(sentences, vocabulary, 6, n_shards=1)
        four = cooccurrence_arrays(sentences, vocabulary, 6, n_shards=4)
        assert np.array_equal(one[0], four[0])
        assert np.array_equal(one[1], four[1])
        np.testing.assert_allclose(one[2], four[2], atol=1e-10, rtol=0)


class TestScatterKernels:
    @pytest.mark.parametrize("rows,dim", [(100, 16), (2100, 130)])
    def test_scatter_add_matches_add_at(self, rows, dim):
        # (100, 16) exercises the dense bincount path, (2100, 130) the
        # sort + reduceat path (table.size above DENSE_SCATTER_MAX).
        assert (rows * dim <= DENSE_SCATTER_MAX) == (rows == 100)
        rng = np.random.default_rng(rows)
        got = rng.normal(size=(rows, dim))
        want = got.copy()
        ids = rng.integers(0, rows, 4000)
        updates = rng.normal(size=(4000, dim))
        scatter_add(got, ids, updates)
        np.add.at(want, ids, updates)
        np.testing.assert_allclose(got, want, atol=1e-10, rtol=0)

    @pytest.mark.parametrize("rows,batch", [(90, 64), (9000, 64)])
    def test_scatter_outer_add_matches_add_at(self, rows, batch):
        # Small tables take the bincount + matmul path; large ones fall
        # back to scattering the materialised outer product.
        assert (rows * batch <= DENSE_SCATTER_MAX) == (rows == 90)
        rng = np.random.default_rng(rows)
        got = np.zeros((rows, 16))
        want = np.zeros((rows, 16))
        ids = rng.integers(0, rows, (batch, 6))
        coeffs = rng.normal(size=(batch, 6))
        vectors = rng.normal(size=(batch, 16))
        scatter_outer_add(got, ids, coeffs, vectors, -0.05)
        np.add.at(
            want,
            ids.reshape(-1),
            (-0.05 * coeffs)[..., None].reshape(-1, 1)
            * np.repeat(vectors, 6, axis=0),
        )
        np.testing.assert_allclose(got, want, atol=1e-10, rtol=0)

    def test_scatter_add_empty_ids_is_noop(self):
        table = np.ones((8, 4))
        scatter_add(table, np.empty(0, dtype=np.int64), np.empty((0, 4)))
        assert np.array_equal(table, np.ones((8, 4)))


class TestSmallKernels:
    def test_negative_table_matches_scalar_loop(self):
        sentences = _toy_corpus(seed=2)
        vocabulary = build_vocabulary(sentences, min_count=1)
        weights = np.array(
            [
                float(vocabulary.count(vocabulary.token_of(i))) ** 0.75
                for i in range(len(vocabulary))
            ]
        )
        reference = np.cumsum(weights / weights.sum())
        assert np.array_equal(negative_table(vocabulary), reference)

    def test_ngram_rows_cached_equals_uncached_equals_hash(self):
        grams = character_ngrams("acetylcholine", 3, 5)
        cache = {}
        cached = ngram_bucket_rows(grams, 500, 1000, cache=cache)
        uncached = ngram_bucket_rows(grams, 500, 1000)
        direct = np.array(
            [500 + stable_hash("ngram", g) % 1000 for g in grams],
            dtype=np.int64,
        )
        assert np.array_equal(cached, uncached)
        assert np.array_equal(cached, direct)
        # second cached call answers from the memo with identical rows
        assert np.array_equal(
            ngram_bucket_rows(grams, 500, 1000, cache=cache), direct
        )

    def test_pad_all_matches_per_sequence_reference(self):
        sequences = [[5, 2, 9], [1], [4, 4, 4, 4, 4, 4], [7, 8]]
        ids, mask, lengths = pad_all(sequences, pad_id=0, max_len=6)
        assert ids.shape == mask.shape == (4, 6)
        for row, seq in enumerate(sequences):
            want = (seq + [0] * 6)[:6]
            assert ids[row].tolist() == want
            assert mask[row].tolist() == [1] * len(seq) + [0] * (6 - len(seq))
            assert lengths[row] == len(seq)


class TestShardedTraining:
    def test_word2vec_precomputed_pairs_equal_direct(self):
        sentences = _toy_corpus(seed=13)
        config = Word2VecConfig(dim=8, min_count=1, epochs=1, window=3)
        vocabulary = build_vocabulary(sentences, min_count=1)
        pairs = build_pairs(
            sentences_to_ids(sentences, vocabulary),
            config.window,
            config.seed,
            n_shards=4,
        )
        direct = Word2Vec.train(sentences, config, shards=4)
        from_pairs = Word2Vec.train(sentences, config, pairs=pairs)
        assert np.array_equal(direct.matrix, from_pairs.matrix)


def _store_digest(root):
    """Digest of every artifact byte under ``root`` except meta.json
    (which records wall-clock timestamps and the builder pid)."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.name == "meta.json":
            continue
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestJobsParity:
    def test_parallel_embedding_warm_is_byte_identical(self, tmp_path):
        """jobs=1 (thread) and jobs=4 (process pool) must produce
        byte-identical embedding artifacts — the fixed-shard contract."""
        targets = [
            "embedding-GloVe",
            "embedding-W2V-Chem",
            "embedding-GloVe-Chem",
            "embedding-BioWordVec",
        ]
        serial = Lab(
            dataclasses.replace(
                MICRO_LAB_CONFIG, artifact_dir=str(tmp_path / "serial")
            )
        )
        serial_results = serial.warm(targets, jobs=1, executor="thread")
        parallel = Lab(
            dataclasses.replace(
                MICRO_LAB_CONFIG, artifact_dir=str(tmp_path / "parallel")
            )
        )
        parallel_results = parallel.warm(targets, jobs=4, executor="process")
        assert all(r.status == "ok" for r in serial_results.values())
        assert all(r.status == "ok" for r in parallel_results.values())
        assert _store_digest(tmp_path / "serial") == _store_digest(
            tmp_path / "parallel"
        )
