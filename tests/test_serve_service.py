"""Shedding and accounting on the transport-free service core, then the
same contract observed through HTTP: 503 + Retry-After, never silence."""

import http.client
import json

import pytest

from repro.core.triples import LabeledTriple
from repro.ontology.relations import HAS_ROLE
from repro.resilience.faults import FaultClock
from repro.serve.curator import Curator
from repro.serve.server import start_server, stop_server
from repro.serve.service import Backend, CurationService, ServeStats, ShedError


class StubCurator(Curator):
    """Controllable backend: labels everything 1 until told to fail."""

    def __init__(self, name="stub"):
        super().__init__(name)
        self.fail = False
        self.calls = 0

    def classify_batch(self, triples):
        self.calls += 1
        if self.fail:
            raise RuntimeError("backend down")
        return [1] * len(triples)


def make_triples(n, tag="t"):
    return [
        LabeledTriple(
            subject_id=f"s:{tag}{i}",
            subject_name=f"subject {tag}{i}",
            relation=HAS_ROLE,
            object_id=f"o:{tag}{i}",
            object_name=f"object {tag}{i}",
            label=0,
        )
        for i in range(n)
    ]


def make_backend(curator=None, **kwargs):
    kwargs.setdefault("max_wait_s", 0.0)  # no coalescing window in tests
    return Backend(curator or StubCurator(), **kwargs)


class TestBackendShedding:
    def test_breaker_opens_after_consecutive_failures(self):
        clock = FaultClock()
        curator = StubCurator()
        backend = make_backend(
            curator, failure_threshold=2, reset_timeout=5.0, clock=clock
        ).start()
        try:
            curator.fail = True
            for _ in range(2):
                with pytest.raises(RuntimeError, match="backend down"):
                    backend.classify(make_triples(1))
            # Third request never reaches the curator: shed at the door.
            calls_before = curator.calls
            with pytest.raises(ShedError) as shed:
                backend.classify(make_triples(1))
            assert shed.value.reason == "breaker-open"
            assert shed.value.retry_after_s == 5.0
            assert curator.calls == calls_before
            assert backend.breaker.state == "open"
        finally:
            backend.stop()

    def test_breaker_recovers_after_reset_timeout(self):
        clock = FaultClock()
        curator = StubCurator()
        backend = make_backend(
            curator, failure_threshold=1, reset_timeout=5.0, clock=clock
        ).start()
        try:
            curator.fail = True
            with pytest.raises(RuntimeError):
                backend.classify(make_triples(1))
            with pytest.raises(ShedError):
                backend.classify(make_triples(1))
            # Cool down, fix the backend: the half-open probe closes it.
            clock.advance(5.1)
            curator.fail = False
            labels, batch_size = backend.classify(make_triples(2))
            assert labels == [1, 1]
            assert batch_size == 2
            assert backend.breaker.state == "closed"
        finally:
            backend.stop()

    def test_full_queue_sheds_with_retry_after(self):
        # No worker thread: submissions pile up until the bound trips.
        backend = make_backend(max_queue=1, max_wait_s=0.004)
        backend.batcher.submit(make_triples(1))
        with pytest.raises(ShedError) as shed:
            backend.classify(make_triples(1))
        assert shed.value.reason == "queue-full"
        assert shed.value.retry_after_s == pytest.approx(0.05)  # floor wins

    def test_successful_classify_reports_coalesced_size(self):
        backend = make_backend().start()
        try:
            labels, batch_size = backend.classify(make_triples(3))
            assert labels == [1, 1, 1]
            assert batch_size >= 3
        finally:
            backend.stop()


class TestServeStats:
    def test_counters_and_shed_rate(self):
        stats = ServeStats()
        stats.record("ok", triples=4, latency_s=0.010)
        stats.record("ok", triples=2, latency_s=0.020)
        stats.record("shed")
        stats.record("error")
        snapshot = stats.snapshot()
        assert snapshot["requests"] == 4
        assert snapshot["ok"] == 2
        assert snapshot["shed"] == 1
        assert snapshot["errors"] == 1
        assert snapshot["triples"] == 6
        assert snapshot["shed_rate"] == 0.25
        assert snapshot["latency_p50_ms"] == pytest.approx(15.0)

    def test_empty_snapshot_has_no_percentiles(self):
        snapshot = ServeStats().snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["shed_rate"] == 0.0
        assert snapshot["latency_p50_ms"] is None
        assert snapshot["latency_p99_ms"] is None


class TestCurationService:
    def test_routes_to_default_backend(self):
        service = CurationService.from_curators(
            {"stub": StubCurator()}, max_wait_s=0.0
        ).start()
        try:
            name, labels, _ = service.classify(None, make_triples(2))
            assert name == "stub"
            assert labels == [1, 1]
        finally:
            service.stop()

    def test_unknown_backend_is_a_key_error(self):
        service = CurationService.from_curators(
            {"stub": StubCurator()}, max_wait_s=0.0
        ).start()
        try:
            with pytest.raises(KeyError, match="unknown backend"):
                service.classify("bert-9000", make_triples(1))
        finally:
            service.stop()

    def test_shed_requests_are_counted_not_silent(self):
        clock = FaultClock()
        curator = StubCurator()
        service = CurationService.from_curators(
            {"stub": curator},
            max_wait_s=0.0,
            failure_threshold=1,
            reset_timeout=60.0,
            clock=clock,
        ).start()
        try:
            curator.fail = True
            with pytest.raises(RuntimeError):
                service.classify("stub", make_triples(1))
            with pytest.raises(ShedError):
                service.classify("stub", make_triples(1))
            totals = service.statz_payload()["totals"]
            assert totals["requests"] == 2
            assert totals["errors"] == 1
            assert totals["shed"] == 1
            assert totals["shed_rate"] == 0.5
            backend_view = service.statz_payload()["backends"]["stub"]
            assert backend_view["breaker"] == "open"
        finally:
            service.stop()

    def test_healthz_payload(self):
        service = CurationService.from_curators(
            {"stub": StubCurator()}, max_wait_s=0.0
        )
        assert service.healthz_payload()["status"] == "stopped"
        with service:
            payload = service.healthz_payload()
            assert payload == {
                "status": "ok",
                "backends": ["stub"],
                "default_backend": "stub",
            }


class HttpFixture:
    """One stub-backed server per test, torn down reliably."""

    def __init__(self, **backend_kwargs):
        backend_kwargs.setdefault("max_wait_s", 0.0)
        self.curator = StubCurator()
        self.service = CurationService.from_curators(
            {"stub": self.curator}, **backend_kwargs
        ).start()
        self.server, self.thread, self.port = start_server(self.service)

    def close(self):
        stop_server(self.server, self.thread)

    def request(self, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            connection.request(
                method,
                path,
                body=None if body is None else json.dumps(body, sort_keys=True),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()


TRIPLE = {"subject": "caffeine", "relation": "has_role", "object": "stimulant"}


class TestHttpContract:
    def test_shed_is_503_with_retry_after(self):
        fixture = HttpFixture(failure_threshold=1, reset_timeout=2.5)
        try:
            # Trip the breaker directly; the next HTTP request is shed.
            fixture.service.pool["stub"].breaker.record_failure()
            status, headers, payload = fixture.request(
                "POST", "/v1/classify", {"triple": TRIPLE}
            )
            assert status == 503
            assert headers["Retry-After"] == "2.500"
            assert payload["status"] == 503
            assert payload["retry_after_s"] == 2.5
        finally:
            fixture.close()

    def test_backend_failure_is_500_not_a_hang(self):
        fixture = HttpFixture()
        try:
            fixture.curator.fail = True
            status, _, payload = fixture.request(
                "POST", "/v1/classify", {"triple": TRIPLE}
            )
            assert status == 500
            assert payload["error"] == "backend down"
        finally:
            fixture.close()

    def test_schema_error_is_400(self):
        fixture = HttpFixture()
        try:
            status, _, payload = fixture.request("POST", "/v1/classify", {})
            assert status == 400
            assert payload["status"] == 400
        finally:
            fixture.close()

    def test_unknown_backend_is_404(self):
        fixture = HttpFixture()
        try:
            status, _, payload = fixture.request(
                "POST", "/v1/classify", {"triple": TRIPLE, "backend": "nope"}
            )
            assert status == 404
            assert "unknown backend" in payload["error"]
        finally:
            fixture.close()

    def test_unknown_route_is_404(self):
        fixture = HttpFixture()
        try:
            status, _, _ = fixture.request("GET", "/metrics")
            assert status == 404
            status, _, _ = fixture.request("POST", "/v2/classify", {})
            assert status == 404
        finally:
            fixture.close()

    def test_healthz_and_statz_over_http(self):
        fixture = HttpFixture()
        try:
            fixture.request("POST", "/v1/classify", {"triple": TRIPLE})
            status, _, health = fixture.request("GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            status, _, statz = fixture.request("GET", "/statz")
            assert status == 200
            assert statz["totals"]["requests"] == 1
            assert statz["backends"]["stub"]["breaker"] == "closed"
            assert statz["backends"]["stub"]["batcher"]["triples"] == 1
        finally:
            fixture.close()
