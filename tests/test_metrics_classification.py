"""Tests for accuracy / precision / recall / F1 / confusion matrix."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    evaluate_binary,
    f1_score,
    precision,
    recall,
)

binary_lists = st.lists(st.integers(0, 1), min_size=1, max_size=60)


class TestConfusionMatrix:
    def test_layout(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 0, 1])
        assert matrix.tolist() == [[1, 1], [1, 1]]

    def test_all_correct(self):
        matrix = confusion_matrix([1, 0, 1], [1, 0, 1])
        assert matrix[0, 0] == 1 and matrix[1, 1] == 2
        assert matrix[0, 1] == 0 and matrix[1, 0] == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="non-binary"):
            confusion_matrix([0, 2], [0, 1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            confusion_matrix([0, 1], [0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            confusion_matrix([], [])


class TestPointMetrics:
    def test_known_values(self):
        y_true = [1, 1, 1, 1, 0, 0, 0, 0]
        y_pred = [1, 1, 1, 0, 1, 0, 0, 0]
        assert accuracy(y_true, y_pred) == pytest.approx(0.75)
        assert precision(y_true, y_pred) == pytest.approx(3 / 4)
        assert recall(y_true, y_pred) == pytest.approx(3 / 4)
        assert f1_score(y_true, y_pred) == pytest.approx(0.75)

    def test_zero_division_conventions(self):
        # No positive predictions: precision 0; no positives: recall 0.
        assert precision([1, 1], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_perfect(self):
        y = [0, 1, 1, 0, 1]
        assert accuracy(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    @given(binary_lists)
    def test_accuracy_on_self_is_one(self, labels):
        assert accuracy(labels, labels) == 1.0

    @given(st.integers(0, 2**32 - 1))
    def test_f1_between_precision_and_recall_bounds(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=30)
        y_pred = rng.integers(0, 2, size=30)
        f1 = f1_score(y_true, y_pred)
        p = precision(y_true, y_pred)
        r = recall(y_true, y_pred)
        assert f1 <= max(p, r) + 1e-12
        assert f1 >= min(p, r) - 1e-12 or f1 == 0.0


class TestEvaluateBinary:
    def test_weighted_equals_positive_on_symmetric_errors(self):
        y_true = [1, 0, 1, 0]
        y_pred = [1, 0, 0, 1]
        report = evaluate_binary(y_true, y_pred)
        assert report.accuracy == pytest.approx(0.5)
        assert report.precision == pytest.approx(0.5)

    def test_report_fields_consistent(self):
        y_true = [1] * 6 + [0] * 4
        y_pred = [1] * 5 + [0] + [0] * 3 + [1]
        report = evaluate_binary(y_true, y_pred)
        assert report.support == 10
        assert report.positive_recall == pytest.approx(5 / 6)
        assert report.positive_precision == pytest.approx(5 / 6)
        assert 0.0 <= report.f1 <= 1.0

    def test_as_row_rounds(self):
        report = evaluate_binary([1, 0, 1], [1, 0, 0])
        row = report.as_row()
        assert set(row) == {"accuracy", "precision", "recall", "f1"}
        assert row["accuracy"] == pytest.approx(0.6667, abs=1e-4)

    @given(binary_lists)
    def test_weighted_metrics_bounded(self, labels):
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 2, size=len(labels))
        report = evaluate_binary(labels, predictions)
        for value in (report.precision, report.recall, report.f1):
            assert 0.0 <= value <= 1.0
