"""Tests for the manifest hotspots section (repro.obs.manifest)."""

import pytest

from repro.obs import trace
from repro.obs.manifest import (
    aggregate_span_times,
    build_hotspots,
    build_manifest,
    register_section_provider,
    slowest_stages,
    unregister_section_provider,
)
from repro.obs.trace import get_tracer, span


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    trace.reset()
    tracer.enabled = True
    yield
    tracer.enabled = was_enabled
    trace.reset()


def _forest():
    """A serialised span forest: two trees, repeated stage names."""
    return [
        {
            "name": "pipeline",
            "duration_s": 1.0,
            "self_time_s": 0.1,
            "children": [
                {"name": "fit", "duration_s": 0.6, "self_time_s": 0.6},
                {"name": "load", "duration_s": 0.3, "self_time_s": 0.3},
            ],
        },
        {"name": "fit", "duration_s": 0.2, "self_time_s": 0.2},
    ]


class TestAggregation:
    def test_aggregates_across_trees(self):
        rows = aggregate_span_times(_forest())
        assert rows["fit"] == {
            "count": 2, "total_s": 0.8, "self_s": 0.8, "max_s": 0.6,
        }
        assert rows["pipeline"]["self_s"] == pytest.approx(0.1)
        assert rows["load"]["count"] == 1

    def test_slowest_stages_ranked_by_self_time(self):
        ranked = slowest_stages(_forest())
        assert [row["name"] for row in ranked] == ["fit", "load", "pipeline"]

    def test_slowest_stages_top_n(self):
        assert len(slowest_stages(_forest(), top_n=1)) == 1
        assert slowest_stages(_forest(), top_n=0) == []

    def test_empty_forest(self):
        assert slowest_stages([]) == []
        assert build_hotspots([]) == {"slowest_stages": []}


class TestSectionProviders:
    def test_provider_keys_merge_into_hotspots(self):
        register_section_provider("test.extra", lambda: {"extra": [1, 2]})
        try:
            hotspots = build_hotspots(_forest())
            assert hotspots["extra"] == [1, 2]
            assert hotspots["slowest_stages"]
        finally:
            unregister_section_provider("test.extra")

    def test_reregistering_replaces(self):
        register_section_provider("test.extra", lambda: {"extra": "old"})
        register_section_provider("test.extra", lambda: {"extra": "new"})
        try:
            assert build_hotspots([])["extra"] == "new"
        finally:
            unregister_section_provider("test.extra")

    def test_failing_provider_recorded_not_raised(self):
        def boom():
            raise RuntimeError("provider broke")

        register_section_provider("test.broken", boom)
        try:
            hotspots = build_hotspots([])
            assert hotspots["test.broken"] == {
                "error": "RuntimeError: provider broke"
            }
            assert "slowest_stages" in hotspots
            counters = get_tracer().counters()
            assert counters.get("manifest.provider_errors", 0) >= 1
        finally:
            unregister_section_provider("test.broken")

    def test_unregister_unknown_is_noop(self):
        unregister_section_provider("never.registered")


class TestManifestIntegration:
    def test_manifest_always_has_hotspots(self):
        with span("stage.alpha"):
            with span("stage.beta"):
                pass
        manifest = build_manifest()
        hotspots = manifest["hotspots"]
        names = [row["name"] for row in hotspots["slowest_stages"]]
        assert "stage.alpha" in names and "stage.beta" in names

    def test_hotspots_present_even_without_spans(self):
        assert build_manifest()["hotspots"]["slowest_stages"] == []
