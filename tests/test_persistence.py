"""Round-trip tests for model persistence."""

import numpy as np
import pytest

from repro.bert.model import BertConfig, MiniBert
from repro.bert.pretrain import PretrainConfig, pretrain_mlm
from repro.bert.wordpiece import train_wordpiece
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.utils.persistence import (
    load_bert,
    load_embeddings,
    save_bert,
    save_embeddings,
)

CORPUS = [["alpha", "beta", "gamma", "delta"], ["beta", "gamma", "alpha"]] * 15


class TestEmbeddingPersistence:
    @pytest.fixture(scope="class")
    def model(self):
        return Word2Vec.train(
            CORPUS, Word2VecConfig(dim=12, epochs=1, min_count=1, seed=0),
            name="W2V-test",
        )

    def test_round_trip_vectors(self, model, tmp_path):
        path = tmp_path / "emb.npz"
        save_embeddings(model, path)
        loaded = load_embeddings(path)
        assert loaded.name == "W2V-test"
        assert loaded.dim == model.dim
        for token in ("alpha", "beta", "gamma"):
            assert np.allclose(loaded.vector(token), model.vector(token))

    def test_round_trip_vocabulary_counts(self, model, tmp_path):
        path = tmp_path / "emb.npz"
        save_embeddings(model, path)
        loaded = load_embeddings(path)
        for token in model.vocabulary:
            assert loaded.vocabulary.count(token) == model.vocabulary.count(token)

    def test_oov_behaviour_preserved_by_name(self, model, tmp_path):
        path = tmp_path / "emb.npz"
        save_embeddings(model, path)
        loaded = load_embeddings(path)
        assert not loaded.contains("zzz")
        assert loaded.vector("zzz").shape == (12,)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, format=np.array("something-else"))
        with pytest.raises(ValueError, match="not a repro-static"):
            load_embeddings(path)

    def test_bert_file_rejected_as_embeddings(self, model, tmp_path):
        """Cross-format confusion: a mini-BERT .npz is not an embedding file."""
        tokenizer = train_wordpiece(CORPUS, vocab_size=40)
        bert = MiniBert(
            tokenizer,
            BertConfig(d_model=16, n_heads=2, n_layers=1, d_ff=32, max_len=16),
        )
        path = tmp_path / "bert.npz"
        save_bert(bert, path)
        with pytest.raises(ValueError, match="not a repro-static"):
            load_embeddings(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_embeddings(tmp_path / "absent.npz")


class TestBertPersistence:
    @pytest.fixture(scope="class")
    def model(self):
        tokenizer = train_wordpiece(CORPUS, vocab_size=50)
        return pretrain_mlm(
            CORPUS,
            tokenizer,
            BertConfig(d_model=16, n_heads=2, n_layers=2, d_ff=32,
                       max_len=16, dropout=0.0, seed=1),
            PretrainConfig(epochs=1, seed=1),
        )

    def test_round_trip_exact(self, model, tmp_path):
        path = tmp_path / "bert.npz"
        save_bert(model, path)
        loaded = load_bert(path)
        assert loaded.config == model.config
        assert len(loaded.tokenizer) == len(model.tokenizer)
        original = model.cls_embedding(["alpha", "beta"])
        restored = loaded.cls_embedding(["alpha", "beta"])
        assert np.allclose(original, restored)

    def test_classification_logits_identical(self, model, tmp_path):
        path = tmp_path / "bert.npz"
        save_bert(model, path)
        loaded = load_bert(path)
        ids, mask = model.pad_batch([[2, 5, 6, 3]])
        model.set_training(False)
        assert np.allclose(
            model.forward_classify(ids, mask),
            loaded.forward_classify(ids, mask),
        )

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, format=np.array("nope"))
        with pytest.raises(ValueError, match="not a repro-minibert"):
            load_bert(path)

    def test_embedding_file_rejected_as_bert(self, tmp_path):
        """Cross-format confusion: an embedding .npz is not a mini-BERT file."""
        embeddings = Word2Vec.train(
            CORPUS, Word2VecConfig(dim=8, epochs=1, min_count=1, seed=0)
        )
        path = tmp_path / "emb.npz"
        save_embeddings(embeddings, path)
        with pytest.raises(ValueError, match="not a repro-minibert"):
            load_bert(path)

    def test_parameter_count_mismatch_rejected(self, model, tmp_path):
        path = tmp_path / "bert.npz"
        save_bert(model, path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {key: data[key] for key in data.files}
        param_keys = sorted(k for k in arrays if k.startswith("param_"))
        del arrays[param_keys[-1]]  # drop one tensor
        truncated = tmp_path / "truncated.npz"
        np.savez(truncated, **arrays)
        with pytest.raises(ValueError, match="parameter count mismatch"):
            load_bert(truncated)

    def test_parameter_shape_mismatch_rejected(self, model, tmp_path):
        path = tmp_path / "bert.npz"
        save_bert(model, path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {key: data[key] for key in data.files}
        param_keys = sorted(k for k in arrays if k.startswith("param_"))
        arrays[param_keys[0]] = np.zeros((3, 3))  # wrong shape
        mangled = tmp_path / "mangled.npz"
        np.savez(mangled, **arrays)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_bert(mangled)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bert(tmp_path / "absent.npz")

    def test_loaded_model_is_eval_mode(self, model, tmp_path):
        path = tmp_path / "bert.npz"
        save_bert(model, path)
        assert load_bert(path).training is False
