"""Shared fixtures: small, session-scoped instances of the expensive objects."""

import os

import pytest

# Hygiene: a developer's (or CI job's) shared artifact store must never leak
# into the unit suite — tests construct Labs with many configs and assert on
# build behaviour.  Tests that want a store set LabConfig.artifact_dir.
os.environ.pop("REPRO_ARTIFACTS", None)

from repro.core import Lab, LabConfig, build_task_dataset
from repro.ontology import SynthesisConfig, synthesize_chebi_like
from repro.text import CorpusConfig, generate_chemistry_corpus
from repro.text.corpus import corpus_sentences


SMALL_LAB_CONFIG = LabConfig(
    n_chemical_entities=400,
    ontology_seed=3,
    corpus_documents=60,
    corpus_sentences=15,
    statement_coverage=0.6,
    embedding_dim=32,
    embedding_epochs=2,
    glove_epochs=4,
    wordpiece_vocab=400,
    bert_d_model=32,
    bert_layers=2,
    bert_heads=2,
    bert_d_ff=64,
    pretrain_epochs=1,
    pretrain_sentences=400,
    max_train=600,
    max_test=200,
    rf_estimators=8,
    rf_max_depth=10,
    lstm_epochs=2,
    seed=0,
)


#: Tiny apparatus for pipeline tests that build several fresh Labs; every
#: stage (including BERT pretraining) completes in a few seconds total.
MICRO_LAB_CONFIG = LabConfig(
    n_chemical_entities=120,
    corpus_documents=12,
    corpus_sentences=6,
    wordpiece_vocab=200,
    bert_d_model=16,
    bert_layers=1,
    bert_heads=2,
    bert_d_ff=32,
    bert_max_len=24,
    pretrain_epochs=1,
    pretrain_sentences=60,
    embedding_dim=8,
    embedding_epochs=1,
    glove_epochs=1,
    max_train=120,
    max_test=40,
    rf_estimators=4,
    rf_max_depth=4,
    lstm_epochs=1,
    ft_epochs=1,
)


@pytest.fixture(scope="session")
def ontology():
    """A small synthetic ontology shared across the suite."""
    return synthesize_chebi_like(SynthesisConfig(n_chemical_entities=400, seed=3))


@pytest.fixture(scope="session")
def task1_dataset(ontology):
    return build_task_dataset(ontology, 1, seed=42)


@pytest.fixture(scope="session")
def task2_dataset(ontology):
    return build_task_dataset(ontology, 2, seed=42)


@pytest.fixture(scope="session")
def task3_dataset(ontology):
    return build_task_dataset(ontology, 3, seed=42)


@pytest.fixture(scope="session")
def chem_sentences(ontology):
    documents = generate_chemistry_corpus(
        ontology, CorpusConfig(n_documents=40, sentences_per_document=12, seed=5)
    )
    return corpus_sentences(documents)


@pytest.fixture(scope="session")
def lab():
    """A small Lab; building all of it lazily keeps unrelated tests fast."""
    return Lab(SMALL_LAB_CONFIG)
