"""Tests for word2vec, GloVe and fastText training."""

import numpy as np
import pytest

from repro.embeddings.fasttext import FastText, FastTextConfig, character_ngrams
from repro.embeddings.glove import GloVe, GloVeConfig, cooccurrence_counts
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.text.vocab import build_vocabulary


def synonym_corpus(n=300):
    """Corpus where (hot, warm) and (cold, icy) share contexts."""
    rng = np.random.default_rng(0)
    sentences = []
    for _ in range(n):
        if rng.random() < 0.5:
            word = "hot" if rng.random() < 0.5 else "warm"
            sentences.append([word, "sun", "fire", "summer", word])
        else:
            word = "cold" if rng.random() < 0.5 else "icy"
            sentences.append([word, "snow", "winter", "frost", word])
    return sentences


def cosine(a, b):
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))


class TestWord2Vec:
    def test_learns_synonym_structure(self):
        model = Word2Vec.train(
            synonym_corpus(),
            Word2VecConfig(dim=24, epochs=3, min_count=2, seed=1),
        )
        same = cosine(model.vector("hot"), model.vector("warm"))
        cross = cosine(model.vector("hot"), model.vector("icy"))
        assert same > cross

    def test_deterministic(self):
        config = Word2VecConfig(dim=8, epochs=1, min_count=1, seed=2)
        corpus = synonym_corpus(40)
        a = Word2Vec.train(corpus, config)
        b = Word2Vec.train(corpus, config)
        assert np.allclose(a.matrix, b.matrix)

    def test_min_count_respected(self):
        corpus = [["common"] * 4 + ["rare"]] * 3
        model = Word2Vec.train(
            corpus, Word2VecConfig(dim=4, epochs=1, min_count=4, seed=0)
        )
        assert model.contains("common")
        assert not model.contains("rare")

    def test_too_short_sentences_raise(self):
        with pytest.raises(ValueError, match="pairs"):
            Word2Vec.train([["only"]], Word2VecConfig(dim=4, min_count=1))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Word2VecConfig(dim=0)
        with pytest.raises(ValueError):
            Word2VecConfig(learning_rate=-1)


class TestGloVe:
    def test_cooccurrence_symmetry(self):
        vocab = build_vocabulary([["a", "b", "c"]], min_count=1)
        counts = cooccurrence_counts([["a", "b", "c"]], vocab, window=2)
        ai, bi = vocab.id_of("a"), vocab.id_of("b")
        assert counts[(ai, bi)] == counts[(bi, ai)]

    def test_distance_weighting(self):
        vocab = build_vocabulary([["a", "b", "c"]], min_count=1)
        counts = cooccurrence_counts([["a", "b", "c"]], vocab, window=2)
        ai, bi, ci = vocab.id_of("a"), vocab.id_of("b"), vocab.id_of("c")
        assert counts[(ai, bi)] == pytest.approx(1.0)
        assert counts[(ai, ci)] == pytest.approx(0.5)

    def test_learns_synonym_structure(self):
        model = GloVe.train(
            synonym_corpus(),
            GloVeConfig(dim=24, epochs=10, min_count=2, seed=1),
        )
        same = cosine(model.vector("cold"), model.vector("icy"))
        cross = cosine(model.vector("cold"), model.vector("warm"))
        assert same > cross

    def test_init_from_joins_vocabulary(self):
        base = GloVe.train(
            [["alpha", "beta"] * 4] * 10,
            GloVeConfig(dim=8, epochs=2, min_count=1, seed=0),
            name="base",
        )
        extended = GloVe.train(
            [["gamma", "delta"] * 4] * 10,
            GloVeConfig(dim=8, epochs=2, min_count=1, seed=0),
            name="ext",
            init_from=base,
        )
        for token in ("alpha", "beta", "gamma", "delta"):
            assert extended.contains(token)

    def test_init_from_dim_mismatch(self):
        base = GloVe.train(
            [["a", "b"] * 3] * 5, GloVeConfig(dim=8, epochs=1, min_count=1)
        )
        with pytest.raises(ValueError, match="dim"):
            GloVe.train(
                [["c", "d"] * 3] * 5,
                GloVeConfig(dim=16, epochs=1, min_count=1),
                init_from=base,
            )

    def test_empty_cooccurrence_raises(self):
        vocab = build_vocabulary([["a"]], min_count=1)
        with pytest.raises(ValueError):
            cooccurrence_counts([["a"]], vocab, window=2)


class TestCharacterNgrams:
    def test_boundary_markers(self):
        assert character_ngrams("acid", 3, 3) == ["<ac", "aci", "cid", "id>"]

    def test_range(self):
        grams = character_ngrams("ab", 3, 4)
        assert grams == ["<ab", "ab>", "<ab>"]

    def test_short_word(self):
        assert character_ngrams("a", 3, 3) == ["<a>"]


class TestFastText:
    def test_learns_and_composes_oov(self):
        model = FastText.train(
            synonym_corpus(120),
            FastTextConfig(dim=16, epochs=2, min_count=2, seed=1, bucket=2_000),
        )
        assert model.contains("hot")
        assert not model.contains("hottest")
        # OOV words get subword-composed vectors, not random ones
        vector = model.vector("hottest")
        assert vector.shape == (16,)
        assert not np.allclose(vector, model.oov_vector("hottest"))

    def test_morphologically_close_words_close(self):
        model = FastText.train(
            synonym_corpus(120),
            FastTextConfig(dim=16, epochs=2, min_count=2, seed=1, bucket=2_000),
        )
        near = cosine(model.vector("winter"), model.vector("winters"))
        far = cosine(model.vector("winter"), model.vector("sun"))
        assert near > far

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FastTextConfig(min_n=4, max_n=3)
        with pytest.raises(ValueError):
            FastTextConfig(bucket=0)
