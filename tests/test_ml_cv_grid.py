"""Tests for stratified k-fold CV and grid search."""

import numpy as np
import pytest

from repro.ml.cross_validation import stratified_kfold
from repro.ml.grid_search import grid_search, parameter_grid


class TestStratifiedKFold:
    def test_partition(self):
        labels = [0] * 20 + [1] * 30
        folds = stratified_kfold(labels, n_folds=5, seed=0)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(50))

    def test_stratification(self):
        labels = np.array([0] * 20 + [1] * 30)
        for train_idx, test_idx in stratified_kfold(labels, n_folds=5, seed=0):
            test_labels = labels[test_idx]
            assert (test_labels == 0).sum() == 4
            assert (test_labels == 1).sum() == 6

    def test_train_test_disjoint(self):
        labels = [0, 1] * 10
        for train_idx, test_idx in stratified_kfold(labels, n_folds=4, seed=0):
            assert not set(train_idx) & set(test_idx)

    def test_too_small_class_raises(self):
        with pytest.raises(ValueError, match="folds"):
            stratified_kfold([0, 0, 0, 1], n_folds=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            stratified_kfold([], n_folds=2)
        with pytest.raises(ValueError):
            stratified_kfold([0, 1], n_folds=1)


class TestParameterGrid:
    def test_expansion(self):
        combos = parameter_grid({"a": [1, 2], "b": ["x"]})
        assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            parameter_grid({})
        with pytest.raises(ValueError):
            parameter_grid({"a": []})


class _ThresholdModel:
    """Classifies by x[:, 0] > threshold; 'correct' threshold is 0."""

    def __init__(self, threshold):
        self.threshold = threshold

    def fit(self, x, y):
        return self

    def predict(self, x):
        return (x[:, 0] > self.threshold).astype(np.int64)


class TestGridSearch:
    def test_finds_best_threshold(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(np.int64)
        result = grid_search(
            lambda p: _ThresholdModel(p["threshold"]),
            {"threshold": [-2.0, 0.0, 2.0]},
            x,
            y,
            n_folds=4,
        )
        assert result.best_params == {"threshold": 0.0}
        assert result.best_score > 0.9
        assert len(result.all_scores) == 3

    def test_best_model_refit(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 2))
        y = (x[:, 0] > 0).astype(np.int64)
        result = grid_search(
            lambda p: _ThresholdModel(p["threshold"]),
            {"threshold": [0.0]},
            x,
            y,
            n_folds=4,
        )
        assert isinstance(result.best_model, _ThresholdModel)
