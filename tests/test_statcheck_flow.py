"""Fixture tests for the whole-program flow rules (FLOW001-004, GRAPH001).

Same contract as ``test_statcheck_rules``: every rule gets a malicious
program proving it fires across a call boundary and a clean twin proving
it stays quiet — the flow layer's false-positive budget is zero too,
because a whole-program rule that cries wolf gets suppressed wholesale.
Programs are built in memory with :func:`program_from_sources`; GRAPH001
is additionally pinned against the *real* ``lab_graph()`` at the bottom.
"""

import textwrap
import time

from repro.statcheck.flow import (
    FLOW_RULE_IDS,
    StageSpec,
    default_flow_rules,
    program_from_sources,
    real_stage_specs,
    run_flow_rules,
    select_flow_rules,
)
from repro.statcheck.flow.rules_flow import StageGraphConformanceRule


def flow_findings(sources, rules=None):
    program = program_from_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()}
    )
    return run_flow_rules(program, rules)


def flow_rules_found(sources, rules=None):
    return [f.rule for f in flow_findings(sources, rules)]


class TestSeedProvenance:
    def test_literal_seed_across_call_boundary_fires(self):
        found = flow_findings(
            {
                "/fx/train.py": """
                from repro.utils.rng import derive_rng

                def fit(data):
                    return train(data, 42)

                def train(data, seed):
                    rng = derive_rng(seed, "train")
                    return rng
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW001"]
        # Anchored at the literal's origin (the call in fit), not the sink.
        assert found[0].line == 5
        assert "derive_rng" in found[0].message

    def test_config_seed_across_call_boundary_is_clean(self):
        found = flow_rules_found(
            {
                "/fx/train.py": """
                from repro.utils.rng import derive_rng

                def fit(lab, data):
                    return train(data, lab.config.seed)

                def train(data, seed):
                    return derive_rng(seed, "train")
                """
            }
        )
        assert "FLOW001" not in found

    def test_named_seed_constant_is_a_sanctioned_pin(self):
        found = flow_rules_found(
            {
                "/fx/split.py": """
                from repro.utils.rng import derive_rng

                TRAIN_SPLIT_SEED = 3

                def split(rows):
                    return derive_rng(TRAIN_SPLIT_SEED, "split")
                """
            }
        )
        assert "FLOW001" not in found

    def test_unnamed_numeric_constant_fires(self):
        found = flow_findings(
            {
                "/fx/split.py": """
                from repro.utils.rng import derive_rng

                MAGIC = 7

                def split(rows):
                    return derive_rng(MAGIC, "split")
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW001"]
        assert "_SEED" in found[0].message

    def test_seedless_default_rng_fires(self):
        found = flow_rules_found(
            {
                "/fx/noise.py": """
                import numpy as np

                def jitter(xs):
                    return np.random.default_rng().normal(size=len(xs))
                """
            }
        )
        assert found == ["FLOW001"]

    def test_duplicate_stream_same_seed_same_tags_fires(self):
        found = flow_findings(
            {
                "/fx/dup.py": """
                from repro.utils.rng import derive_rng

                class Sampler:
                    def __init__(self, seed):
                        self.seed = seed

                    def subsample(self):
                        return derive_rng(self.seed, "split")

                    def shuffle(self):
                        return derive_rng(self.seed, "split")
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW001"]
        assert "duplicates" in found[0].message

    def test_distinct_tags_are_distinct_streams(self):
        found = flow_rules_found(
            {
                "/fx/dup.py": """
                from repro.utils.rng import derive_rng

                class Sampler:
                    def __init__(self, seed):
                        self.seed = seed

                    def subsample(self):
                        return derive_rng(self.seed, "subsample")

                    def shuffle(self):
                        return derive_rng(self.seed, "shuffle")
                """
            }
        )
        assert "FLOW001" not in found


class TestExceptionEscape:
    def test_typed_error_escaping_thread_target_fires(self):
        found = flow_findings(
            {
                "/fx/engine.py": """
                import threading

                class ChatClientError(Exception):
                    pass

                class Engine:
                    def start(self):
                        worker = threading.Thread(target=self._run)
                        worker.start()

                    def _run(self):
                        self._deliver()

                    def _deliver(self):
                        raise ChatClientError("boom")
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW002"]
        assert "ChatClientError" in found[0].message

    def test_handled_at_the_boundary_is_clean(self):
        found = flow_rules_found(
            {
                "/fx/engine.py": """
                import threading

                class ChatClientError(Exception):
                    pass

                class Engine:
                    def start(self):
                        worker = threading.Thread(target=self._run)
                        worker.start()

                    def _run(self):
                        try:
                            self._deliver()
                        except ChatClientError:
                            self.failed = True

                    def _deliver(self):
                        raise ChatClientError("boom")
                """
            }
        )
        assert "FLOW002" not in found

    def test_request_handler_do_method_fires_and_handled_twin_not(self):
        bad = flow_rules_found(
            {
                "/fx/server.py": """
                from http.server import BaseHTTPRequestHandler

                class ShedError(Exception):
                    pass

                class Handler(BaseHTTPRequestHandler):
                    def do_POST(self):
                        self._admit()

                    def _admit(self):
                        raise ShedError()
                """
            }
        )
        assert bad == ["FLOW002"]
        good = flow_rules_found(
            {
                "/fx/server.py": """
                from http.server import BaseHTTPRequestHandler

                class ShedError(Exception):
                    pass

                class Handler(BaseHTTPRequestHandler):
                    def do_POST(self):
                        try:
                            self._admit()
                        except ShedError:
                            self.send_error(503)

                    def _admit(self):
                        raise ShedError()
                """
            }
        )
        assert "FLOW002" not in good

    def test_untracked_exception_types_are_ignored(self):
        found = flow_rules_found(
            {
                "/fx/engine.py": """
                import threading

                class Engine:
                    def start(self):
                        threading.Thread(target=self._run).start()

                    def _run(self):
                        raise ValueError("not a typed contract")
                """
            }
        )
        assert "FLOW002" not in found


class TestResourceLifecycle:
    def test_happy_path_only_close_fires(self):
        found = flow_findings(
            {
                "/fx/pool.py": """
                from concurrent.futures import ThreadPoolExecutor

                def run(jobs):
                    pool = ThreadPoolExecutor(4)
                    out = [pool.submit(job) for job in jobs]
                    pool.shutdown()
                    return [f.result() for f in out]
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW003"]
        assert "happy path" in found[0].message

    def test_with_block_is_clean(self):
        found = flow_rules_found(
            {
                "/fx/pool.py": """
                from concurrent.futures import ThreadPoolExecutor

                def run(jobs):
                    with ThreadPoolExecutor(4) as pool:
                        return [f.result() for f in [pool.submit(j) for j in jobs]]
                """
            }
        )
        assert "FLOW003" not in found

    def test_finally_disposal_is_clean(self):
        found = flow_rules_found(
            {
                "/fx/pool.py": """
                from concurrent.futures import ThreadPoolExecutor

                def run(jobs):
                    pool = ThreadPoolExecutor(4)
                    try:
                        return [pool.submit(j).result() for j in jobs]
                    finally:
                        pool.shutdown()
                """
            }
        )
        assert "FLOW003" not in found

    def test_never_closed_local_fires(self):
        found = flow_findings(
            {
                "/fx/journal.py": """
                def read_header(path):
                    handle = open(path)
                    return handle.readline()
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW003"]
        assert "never closed" in found[0].message

    def test_returned_handle_is_ownership_transfer(self):
        found = flow_rules_found(
            {
                "/fx/journal.py": """
                def open_journal(path):
                    handle = open(path)
                    return handle
                """
            }
        )
        assert "FLOW003" not in found

    def test_self_store_without_disposal_fires_with_close_clean(self):
        bad = flow_rules_found(
            {
                "/fx/journal.py": """
                class Journal:
                    def __init__(self, path):
                        self._handle = open(path, "a")
                """
            }
        )
        assert bad == ["FLOW003"]
        good = flow_rules_found(
            {
                "/fx/journal.py": """
                class Journal:
                    def __init__(self, path):
                        self._handle = open(path, "a")

                    def close(self):
                        self._handle.close()
                """
            }
        )
        assert "FLOW003" not in good


class TestLockedContract:
    def test_call_without_lock_fires(self):
        found = flow_findings(
            {
                "/fx/bucket.py": """
                import threading

                class Bucket:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._tokens = 0

                    def _refill_locked(self):
                        self._tokens += 1

                    def take(self):
                        self._refill_locked()
                        return self._tokens
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW004"]
        assert "_refill_locked" in found[0].message

    def test_call_under_with_lock_is_clean(self):
        found = flow_rules_found(
            {
                "/fx/bucket.py": """
                import threading

                class Bucket:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._tokens = 0

                    def _refill_locked(self):
                        self._tokens += 1

                    def take(self):
                        with self._lock:
                            self._refill_locked()
                            return self._tokens
                """
            }
        )
        assert "FLOW004" not in found

    def test_locked_caller_propagates_the_contract(self):
        found = flow_rules_found(
            {
                "/fx/bucket.py": """
                import threading

                class Bucket:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._tokens = 0

                    def _refill_locked(self):
                        self._tokens += 1

                    def _cycle_locked(self):
                        self._refill_locked()

                    def take(self):
                        with self._lock:
                            self._cycle_locked()
                """
            }
        )
        assert "FLOW004" not in found

    def test_reacquire_inside_locked_body_fires(self):
        found = flow_findings(
            {
                "/fx/bucket.py": """
                import threading

                class Bucket:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._tokens = 0

                    def _refill_locked(self):
                        with self._lock:
                            self._tokens += 1

                    def take(self):
                        with self._lock:
                            self._refill_locked()
                """
            }
        )
        assert [f.rule for f in found] == ["FLOW004"]
        assert "deadlock" in found[0].message


BUILDER_FIXTURE = {
    "/fx/stagesmod.py": """
    def build_a(lab, inputs):
        return 1

    def build_b(lab, inputs):
        return inputs["a"] + 1
    """
}


def graph_rule(specs):
    return StageGraphConformanceRule(spec_provider=lambda: list(specs))


class TestStageGraphConformance:
    def test_undeclared_known_dep_fires(self):
        specs = [
            StageSpec("a", (), "stagesmod", "build_a"),
            StageSpec("b", (), "stagesmod", "build_b"),
        ]
        found = flow_findings(BUILDER_FIXTURE, rules=[graph_rule(specs)])
        assert [f.rule for f in found] == ["GRAPH001"]
        assert "does not declare it as a dep" in found[0].message

    def test_declared_dep_is_clean(self):
        specs = [
            StageSpec("a", (), "stagesmod", "build_a"),
            StageSpec("b", ("a",), "stagesmod", "build_b"),
        ]
        assert flow_findings(BUILDER_FIXTURE, rules=[graph_rule(specs)]) == []

    def test_read_of_unregistered_artifact_fires(self):
        specs = [StageSpec("b", (), "stagesmod", "build_b")]
        found = flow_findings(BUILDER_FIXTURE, rules=[graph_rule(specs)])
        assert [f.rule for f in found] == ["GRAPH001"]
        assert "no registered stage produces" in found[0].message

    def test_helper_descent_and_loop_unrolling(self):
        sources = {
            "/fx/stagesmod.py": """
            SHARDS = 3

            def _merge(inputs, prefix):
                return [inputs[f"{prefix}-{i}"] for i in range(SHARDS)]

            def build_m(lab, inputs):
                return sum(_merge(inputs, "shard"))
            """
        }
        # The shard stages use a builder that is not in the fixture tree,
        # so only 'merged' is evaluated; they still register as producers.
        specs = [
            StageSpec("shard-0", (), "stagesmod", "absent"),
            StageSpec("shard-1", (), "stagesmod", "absent"),
            StageSpec("shard-2", (), "stagesmod", "absent"),
            StageSpec(
                "merged", ("shard-0", "shard-1"), "stagesmod", "build_m"
            ),
        ]
        found = flow_findings(sources, rules=[graph_rule(specs)])
        assert [f.rule for f in found] == ["GRAPH001"]
        assert "shard-2" in found[0].message

    def test_partial_bound_constants_prune_branches(self):
        sources = {
            "/fx/stagesmod.py": """
            def build_split(lab, inputs, kind):
                if kind == "ml":
                    return inputs["ml-base"]
                return inputs["ft-base"]
            """
        }
        specs = [
            StageSpec("ml-base", (), "stagesmod", "absent"),
            StageSpec("ft-base", (), "stagesmod", "absent"),
            StageSpec(
                "split", ("ml-base",), "stagesmod", "build_split",
                bound={"kind": "ml"},
            ),
        ]
        # The ft-base branch is dead under kind="ml": no finding.
        assert flow_findings(sources, rules=[graph_rule(specs)]) == []


class TestFlowRegistry:
    def test_flow_family_matches_flow_rule_ids(self):
        from repro.statcheck import FAMILIES

        assert tuple(FAMILIES["flow"]) == tuple(FLOW_RULE_IDS)

    def test_select_flow_rules_by_family_and_id(self):
        import pytest

        from repro.statcheck import StatcheckError

        assert {r.id for r in select_flow_rules(["flow"])} == set(FLOW_RULE_IDS)
        assert [r.id for r in select_flow_rules(["FLOW003"])] == ["FLOW003"]
        with pytest.raises(StatcheckError, match="unknown flow rule"):
            select_flow_rules(["DET001"])


class TestRealStageGraph:
    def test_every_registered_stage_is_analyzable(self):
        # GRAPH001's value is proportional to its coverage: every stage the
        # real lab_graph() registers must resolve to an indexed builder
        # that takes `inputs` (or takes no inputs at all).
        specs = real_stage_specs()
        assert len(specs) >= 90
        from repro.statcheck.flow import build_program
        from repro.statcheck.engine import default_target, discover_files, make_context

        contexts = []
        for path in discover_files([default_target()]):
            contexts.append(make_context(path, path.read_text(encoding="utf-8")))
        program = build_program(contexts)
        unresolved = [
            spec.name
            for spec in specs
            if f"{spec.module}:{spec.qualname}" not in program.index.functions
        ]
        assert unresolved == []

    def test_shipped_tree_flows_clean_within_budget(self):
        from repro.statcheck.flow import build_program
        from repro.statcheck.engine import default_target, discover_files, make_context

        started = time.perf_counter()
        contexts = []
        for path in discover_files([default_target()]):
            contexts.append(make_context(path, path.read_text(encoding="utf-8")))
        program = build_program(contexts)
        findings = run_flow_rules(program, default_flow_rules())
        elapsed = time.perf_counter() - started
        assert findings == []
        assert elapsed < 30.0
