"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "out.obo"])
        assert args.entities == 1_000
        assert args.seed == 0

    def test_evaluate_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--paradigm", "nope"])

    def test_icl_variant_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["icl", "--variant", "9"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_trace_requires_manifest_argument(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestCommands:
    def test_synthesize_and_census_round_trip(self, tmp_path, capsys):
        obo_path = str(tmp_path / "tiny.obo")
        assert main(["synthesize", obo_path, "--entities", "120"]) == 0
        out = capsys.readouterr().out
        assert "entities" in out

        assert main(["census", obo_path]) == 0
        out = capsys.readouterr().out
        assert "is_a" in out
        assert "chemical_entity" in out

    def test_dataset_from_synthetic(self, capsys):
        assert main(["dataset", "--task", "2", "--entities", "120",
                     "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "task 2" in out
        assert "9:1 split" in out

    def test_dataset_from_obo(self, tmp_path, capsys):
        obo_path = str(tmp_path / "tiny.obo")
        main(["synthesize", obo_path, "--entities", "120"])
        capsys.readouterr()
        assert main(["dataset", "--obo", obo_path, "--task", "1"]) == 0
        assert "task 1" in capsys.readouterr().out

    def test_icl_with_simulated_model(self, capsys):
        code = main([
            "icl", "--task", "1", "--model", "gpt-4", "--variant", "1",
            "--entities", "300", "--max-train", "400", "--max-test", "150",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out and "kappa" in out

    def test_evaluate_rf(self, capsys):
        code = main([
            "evaluate", "--task", "1", "--paradigm", "rf",
            "--embedding", "Random", "--adaptation", "naive",
            "--entities", "300", "--max-train", "300", "--max-test", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RF(Random)" in out


class TestTraceCommand:
    def test_missing_manifest_is_clean_error(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.manifest.json")])
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "not found" in captured.err
        assert "Traceback" not in captured.err

    def test_corrupt_manifest_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.manifest.json"
        path.write_text("{broken", encoding="utf-8")
        code = main(["trace", str(path)])
        assert code == 1
        captured = capsys.readouterr()
        assert "corrupt" in captured.err
        assert "Traceback" not in captured.err

    def test_wrong_format_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"format": "not-a-manifest"}', encoding="utf-8")
        assert main(["trace", str(path)]) == 1
        assert "not a repro-manifest" in capsys.readouterr().err

    def test_valid_manifest_prints_summary(self, tmp_path, capsys):
        from repro.obs.manifest import write_manifest

        path = tmp_path / "ok.manifest.json"
        write_manifest(path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "per-stage self time" in out
