"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "out.obo"])
        assert args.entities == 1_000
        assert args.seed == 0

    def test_evaluate_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--paradigm", "nope"])

    def test_icl_variant_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["icl", "--variant", "9"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_trace_requires_manifest_argument(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_icl_resilience_defaults(self):
        args = build_parser().parse_args(["icl"])
        assert args.journal is None
        assert args.resume is False
        assert args.faults is None
        assert args.max_deliveries is None
        assert args.output is None

    def test_resume_requires_journal_argument(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_cache_warm_defaults(self):
        args = build_parser().parse_args(["cache", "warm"])
        assert args.dir is None
        assert args.jobs is None
        assert args.executor == "thread"
        assert args.entities is None

    def test_cache_warm_executor_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cache", "warm", "--executor", "telepathy"]
            )

    def test_cache_invalidate_requires_pattern(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "invalidate"])


class TestCommands:
    def test_synthesize_and_census_round_trip(self, tmp_path, capsys):
        obo_path = str(tmp_path / "tiny.obo")
        assert main(["synthesize", obo_path, "--entities", "120"]) == 0
        out = capsys.readouterr().out
        assert "entities" in out

        assert main(["census", obo_path]) == 0
        out = capsys.readouterr().out
        assert "is_a" in out
        assert "chemical_entity" in out

    def test_dataset_from_synthetic(self, capsys):
        assert main(["dataset", "--task", "2", "--entities", "120",
                     "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "task 2" in out
        assert "9:1 split" in out

    def test_dataset_from_obo(self, tmp_path, capsys):
        obo_path = str(tmp_path / "tiny.obo")
        main(["synthesize", obo_path, "--entities", "120"])
        capsys.readouterr()
        assert main(["dataset", "--obo", obo_path, "--task", "1"]) == 0
        assert "task 1" in capsys.readouterr().out

    def test_icl_with_simulated_model(self, capsys):
        code = main([
            "icl", "--task", "1", "--model", "gpt-4", "--variant", "1",
            "--entities", "300", "--max-train", "400", "--max-test", "150",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out and "kappa" in out

    def test_evaluate_rf(self, capsys):
        code = main([
            "evaluate", "--task", "1", "--paradigm", "rf",
            "--embedding", "Random", "--adaptation", "naive",
            "--entities", "300", "--max-train", "300", "--max-test", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RF(Random)" in out


ICL_ARGS = [
    "icl", "--task", "1", "--model", "gpt-4", "--variant", "1",
    "--entities", "300", "--max-train", "400", "--max-test", "150",
]


class TestICLResilience:
    def test_bad_fault_spec_is_clean_error(self, capsys):
        assert main(ICL_ARGS + ["--faults", "explode:0.5"]) == 2
        captured = capsys.readouterr()
        assert "unknown fault kind" in captured.err
        assert "Traceback" not in captured.err

    def test_faulty_table_matches_fault_free(self, tmp_path, capsys):
        base = tmp_path / "base.txt"
        faulty = tmp_path / "faulty.txt"
        assert main(ICL_ARGS + ["--output", str(base)]) == 0
        assert main(ICL_ARGS + [
            "--output", str(faulty),
            "--faults", "timeout:0.2,http500:0.1,malformed:0.05",
        ]) == 0
        captured = capsys.readouterr()
        assert "injected faults" in captured.err
        assert base.read_text() == faulty.read_text()

    def test_kill_and_resume_round_trip(self, tmp_path, capsys):
        base = tmp_path / "base.txt"
        resumed = tmp_path / "resumed.txt"
        journal = tmp_path / "icl.journal.jsonl"
        assert main(ICL_ARGS + ["--output", str(base)]) == 0

        code = main(ICL_ARGS + [
            "--journal", str(journal), "--max-deliveries", "60",
        ])
        assert code == 3
        captured = capsys.readouterr()
        assert "rerun with --resume" in captured.err

        assert main(["resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "progress: 60/" in out

        code = main(ICL_ARGS + [
            "--journal", str(journal), "--resume", "--output", str(resumed),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "resumed 60 deliveries" in captured.err
        assert base.read_text() == resumed.read_text()

    def test_journal_without_resume_starts_fresh(self, tmp_path, capsys):
        journal = tmp_path / "icl.journal.jsonl"
        assert main(ICL_ARGS + [
            "--journal", str(journal), "--max-deliveries", "10",
        ]) == 3
        # No --resume: the stale journal is wiped and the budget hits again.
        assert main(ICL_ARGS + [
            "--journal", str(journal), "--max-deliveries", "10",
        ]) == 3
        capsys.readouterr()
        assert main(["resume", str(journal)]) == 0
        assert "progress: 10/" in capsys.readouterr().out


class TestResumeCommand:
    def test_missing_journal_is_clean_error(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "absent.jsonl")]) == 1
        captured = capsys.readouterr()
        assert "empty or missing" in captured.err
        assert "Traceback" not in captured.err

    def test_summarises_outcomes(self, tmp_path, capsys):
        from repro.resilience.checkpoint import Journal

        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record(
                "__meta__",
                {"model": "m", "variant": 1, "queries": 4, "repeats": 2},
            )
            journal.record("0:0", "true")
            journal.record("0:1", "false")
            journal.record("0:2", "failed")
        assert main(["resume", str(path)]) == 0
        out = capsys.readouterr().out
        assert "progress: 3/8" in out
        assert "true: 1" in out
        assert "failed: 1" in out
        assert "permanent failures" in out


class TestTraceCommand:
    def test_missing_manifest_is_clean_error(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.manifest.json")])
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "not found" in captured.err
        assert "Traceback" not in captured.err

    def test_corrupt_manifest_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.manifest.json"
        path.write_text("{broken", encoding="utf-8")
        code = main(["trace", str(path)])
        assert code == 1
        captured = capsys.readouterr()
        assert "corrupt" in captured.err
        assert "Traceback" not in captured.err

    def test_wrong_format_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"format": "not-a-manifest"}', encoding="utf-8")
        assert main(["trace", str(path)]) == 1
        assert "not a repro-manifest" in capsys.readouterr().err

    def test_valid_manifest_prints_summary(self, tmp_path, capsys):
        from repro.obs.manifest import write_manifest

        path = tmp_path / "ok.manifest.json"
        write_manifest(path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "per-stage self time" in out

    def test_resilience_section_rendered(self):
        from repro.cli import render_manifest

        manifest = {
            "context": {
                "resumed": True,
                "resume_journal": "/tmp/icl.journal.jsonl",
                "resumed_deliveries": 60,
            },
            "counters": {
                "retry.retries": 7,
                "faults.injected.timeout": 4,
                "icl.experiment.deliveries_failed": 2,
                "unrelated.counter": 99,
            },
            "spans": [],
        }
        out = render_manifest(manifest)
        assert "resilience" in out
        assert "resumed: true (60 deliveries from /tmp/icl.journal.jsonl)" in out
        assert "retry.retries: 7" in out
        assert "faults.injected.timeout: 4" in out
        assert "icl.experiment.deliveries_failed: 2" in out
        assert "unrelated.counter" not in out

    def test_no_resilience_section_when_uneventful(self):
        from repro.cli import render_manifest

        out = render_manifest({"counters": {"other": 1}, "spans": []})
        assert "resilience" not in out


def _populate_store(root):
    """Drop a couple of toy entries into a store at ``root``."""
    import json

    from repro.pipeline.stage import Stage
    from repro.pipeline.store import ArtifactStore

    def save(artifact, entry_dir):
        (entry_dir / "value.json").write_text(json.dumps(artifact))

    def load(entry_dir, inputs):
        return json.loads((entry_dir / "value.json").read_text())

    store = ArtifactStore(root)
    for name, key in (("ontology", "aaaa1111"), ("embedding-GloVe", "bbbb2222")):
        stage = Stage(
            name=name, build=lambda lab, inputs: None, save=save, load=load
        )
        store.put(stage, key, {"value": name})
    return store


class TestCacheCommands:
    def test_no_store_configured_is_clean_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        assert main(["cache", "ls"]) == 2
        captured = capsys.readouterr()
        assert "no artifact store" in captured.err
        assert "REPRO_ARTIFACTS" in captured.err

    def test_ls_lists_entries(self, tmp_path, capsys):
        _populate_store(tmp_path)
        assert main(["cache", "ls", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ontology" in out
        assert "embedding-GloVe" in out
        assert "2 entries" in out

    def test_dir_falls_back_to_environment(self, tmp_path, monkeypatch, capsys):
        _populate_store(tmp_path)
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        assert main(["cache", "ls"]) == 0
        assert "2 entries" in capsys.readouterr().out

    def test_invalidate_by_pattern(self, tmp_path, capsys):
        store = _populate_store(tmp_path)
        assert main([
            "cache", "invalidate", "embedding-*", "--dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "invalidated embedding-GloVe" in out
        assert "removed 1 entries" in out
        assert not store.has("embedding-GloVe", "bbbb2222")
        assert store.has("ontology", "aaaa1111")

    def test_gc_reports_sweep(self, tmp_path, capsys):
        _populate_store(tmp_path)
        (tmp_path / "ontology" / ".tmp-abandoned").mkdir()
        assert main(["cache", "gc", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert ".tmp-abandoned" in out
        assert "gc: removed 1 paths" in out


class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings, 2 analyzer error."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.quick is False
        assert args.rules is None
        assert args.output is None

    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_quick_exits_zero_on_shipped_tree(self, capsys):
        assert main(["lint", "--quick"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_planted_determinism_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(bad)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_planted_purity_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "stages.py"
        bad.write_text(
            "def _build_x(lab, inputs):\n"
            "    return open('/tmp/x').read()\n"
        )
        assert main(["lint", str(bad)]) == 1
        assert "PUR002" in capsys.readouterr().out

    def test_planted_concurrency_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._items[k] = v\n"
            "    def reset(self):\n"
            "        self._items.clear()\n"
        )
        assert main(["lint", str(bad)]) == 1
        assert "CONC001" in capsys.readouterr().out

    def test_planted_contract_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(client):\n"
            "    try:\n"
            "        return client.complete('x')\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert main(["lint", str(bad)]) == 1
        assert "RES001" in capsys.readouterr().out

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint", "/no/such/statcheck/target"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format_and_output_file(self, tmp_path, capsys):
        import json as json_mod

        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        out_file = tmp_path / "report.json"
        assert main([
            "lint", str(bad), "--format", "json", "--output", str(out_file),
        ]) == 1
        document = json_mod.loads(capsys.readouterr().out)
        assert document["format"] == "repro-statcheck-v1"
        assert document["findings"][0]["rule"] == "DET001"
        on_disk = json_mod.loads(out_file.read_text())
        assert on_disk == document

    def test_rules_filter_limits_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random, time\nx = random.random()\ny = time.time()\n")
        assert main(["lint", str(bad), "--rules", "DET003"]) == 1
        out = capsys.readouterr().out
        assert "DET003" in out and "DET001" not in out

    def test_quick_detects_planted_cycle(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("from pkg.b import f\n")
        (pkg / "b.py").write_text("from pkg.a import g\n")
        assert main(["lint", "--quick", str(tmp_path)]) == 1
        assert "CYC001" in capsys.readouterr().out


class TestPerfParser:
    def test_perf_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_perf_run_defaults(self):
        args = build_parser().parse_args(["perf", "run"])
        assert args.areas == []
        assert args.quick is False
        assert args.repeats is None
        assert args.warmup is None
        assert args.dir == "."
        assert args.output is None

    def test_perf_compare_defaults(self):
        args = build_parser().parse_args(["perf", "compare"])
        assert args.tolerance == "25%"
        assert args.from_file is None

    def test_perf_update_takes_areas(self):
        args = build_parser().parse_args(
            ["perf", "update", "obo_parse", "rf_fit", "--quick"]
        )
        assert args.areas == ["obo_parse", "rf_fit"]
        assert args.quick is True

    def test_profile_flag_exists(self):
        args = build_parser().parse_args(["--profile", "perf", "run"])
        assert args.profile is True

    def test_unknown_area_exits_two(self, capsys):
        assert main(["perf", "run", "--quick", "warp_drive"]) == 2
        assert "unknown perf area" in capsys.readouterr().err


class TestTraceSlowest:
    @pytest.fixture()
    def manifest_path(self, tmp_path):
        from repro.obs import trace
        from repro.obs.manifest import write_manifest
        from repro.obs.trace import get_tracer, span

        tracer = get_tracer()
        was_enabled = tracer.enabled
        trace.reset()
        tracer.enabled = True
        try:
            with span("pipeline"):
                with span("fit"):
                    sum(i * i for i in range(50_000))
                with span("load"):
                    pass
            path = tmp_path / "run.manifest.json"
            write_manifest(path)
        finally:
            tracer.enabled = was_enabled
            trace.reset()
        return str(path)

    def test_slowest_renders_ranking(self, manifest_path, capsys):
        assert main(["trace", manifest_path, "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest stages (top 2" in out
        assert "fit" in out

    def test_slowest_rejects_nonpositive(self, manifest_path, capsys):
        assert main(["trace", manifest_path, "--slowest", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_plain_trace_still_renders(self, manifest_path, capsys):
        assert main(["trace", manifest_path]) == 0
        assert "span tree" in capsys.readouterr().out

    def test_slowest_handles_manifest_without_hotspots(
        self, manifest_path, tmp_path, capsys
    ):
        # simulate a manifest written before the hotspots section existed
        import json as json_mod

        manifest = json_mod.loads(open(manifest_path).read())
        manifest.pop("hotspots")
        legacy = tmp_path / "legacy.manifest.json"
        legacy.write_text(json_mod.dumps(manifest, sort_keys=True))
        assert main(["trace", str(legacy), "--slowest", "3"]) == 0
        assert "fit" in capsys.readouterr().out


class TestICLDeliveryEngine:
    def test_engine_flags_have_safe_defaults(self):
        args = build_parser().parse_args(["icl"])
        assert args.jobs == 1
        assert args.n_backends == 1
        assert args.hedge_ms is None
        assert args.deadline_ms is None
        assert args.cache is None

    def test_concurrent_table_matches_sequential(self, tmp_path, capsys):
        base = tmp_path / "base.txt"
        engine = tmp_path / "engine.txt"
        assert main(ICL_ARGS + ["--output", str(base)]) == 0
        assert main(ICL_ARGS + [
            "--output", str(engine), "--jobs", "8", "--backends", "4",
        ]) == 0
        captured = capsys.readouterr()
        assert "delivery engine (4 backends, 8 jobs)" in captured.err
        assert base.read_text() == engine.read_text()

    def test_chaos_run_matches_sequential(self, tmp_path, capsys):
        base = tmp_path / "base.txt"
        chaos = tmp_path / "chaos.txt"
        assert main(ICL_ARGS + ["--output", str(base)]) == 0
        assert main(ICL_ARGS + [
            "--output", str(chaos), "--jobs", "8", "--backends", "4",
            "--hedge-ms", "50",
            "--faults", "timeout:0.1,http500:0.05,malformed:0.05",
        ]) == 0
        captured = capsys.readouterr()
        assert "injected faults" in captured.err
        assert base.read_text() == chaos.read_text()

    def test_warm_cache_rerun_rebuilds_nothing(self, tmp_path, capsys):
        cold = tmp_path / "cold.txt"
        warm = tmp_path / "warm.txt"
        cache = tmp_path / "responses"
        assert main(ICL_ARGS + [
            "--output", str(cold), "--jobs", "4", "--backends", "2",
            "--cache", str(cache),
        ]) == 0
        capsys.readouterr()
        assert main(ICL_ARGS + [
            "--output", str(warm), "--jobs", "4", "--backends", "2",
            "--cache", str(cache),
        ]) == 0
        captured = capsys.readouterr()
        assert "cache_hit" in captured.err
        assert "completions" not in captured.err
        assert cold.read_text() == warm.read_text()
