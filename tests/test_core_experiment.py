"""Tests for the Lab orchestration object."""

import pytest

from repro.core.datasets import Dataset
from repro.core.experiment import Lab, LabConfig, subsample
from repro.core.triples import LabeledTriple
from repro.embeddings.registry import MODEL_NAMES
from repro.ontology.relations import IS_A


class TestSubsample:
    def make(self, n_pos, n_neg):
        triples = [
            LabeledTriple(f"s{i}", f"s {i}", IS_A, f"o{i}", f"o {i}", 1)
            for i in range(n_pos)
        ] + [
            LabeledTriple(f"t{i}", f"t {i}", IS_A, f"u{i}", f"u {i}", 0)
            for i in range(n_neg)
        ]
        return Dataset(triples)

    def test_noop_when_small_enough(self):
        dataset = self.make(5, 5)
        assert subsample(dataset, 100) is dataset
        assert subsample(dataset, None) is dataset

    def test_cap_and_ratio(self):
        dataset = self.make(60, 30)
        small = subsample(dataset, 30, seed=0)
        n_pos, n_neg = small.counts()
        assert n_pos + n_neg == 30
        assert n_pos == 20  # 2:1 ratio preserved

    def test_default_seed_derives_from_dataset_identity(self):
        dataset = self.make(60, 30)
        # deterministic: the same dataset always draws the same subsample
        assert (
            subsample(dataset, 30).triples == subsample(dataset, 30).triples
        )
        # but the derived seed is a function of the dataset's identity, so
        # differently-named datasets no longer share one hard-coded draw
        renamed = Dataset(list(dataset), name="another-name")
        assert (
            subsample(dataset, 30).triples != subsample(renamed, 30).triples
        )
        # and of the cap
        assert subsample(dataset, 30).triples != subsample(dataset, 31).triples[:30]

    def test_explicit_seed_overrides_derivation(self):
        dataset = self.make(60, 30)
        renamed = Dataset(list(dataset), name=dataset.name)
        assert (
            subsample(dataset, 30, seed=1).triples
            == subsample(renamed, 30, seed=1).triples
        )
        assert (
            subsample(dataset, 30, seed=1).triples
            != subsample(dataset, 30, seed=2).triples
        )


class TestLab:
    def test_caching_returns_same_objects(self, lab):
        assert lab.ontology is lab.ontology
        assert lab.dataset(1) is lab.dataset(1)
        assert lab.embeddings is lab.embeddings

    def test_embedding_lineup_complete(self, lab):
        assert set(lab.embeddings) == set(MODEL_NAMES)

    def test_embedding_lookup_error(self, lab):
        with pytest.raises(KeyError, match="unknown embedding"):
            lab.embedding("NotAModel")

    def test_split_caps_respected(self, lab):
        split = lab.ml_split(1)
        assert len(split.train) <= lab.config.max_train
        assert len(split.test) <= lab.config.max_test

    def test_ft_split_has_validation(self, lab):
        split = lab.ft_split(1)
        assert split.validation is not None

    def test_adaptation_filters(self, lab):
        assert lab.adaptation_filter("none") is None
        naive = lab.adaptation_filter("naive")
        assert naive(["3", "acid"]) == ["acid"]
        task = lab.adaptation_filter("task-oriented", "W2V-Chem")
        assert callable(task)
        with pytest.raises(ValueError):
            lab.adaptation_filter("bogus")
        with pytest.raises(ValueError):
            lab.adaptation_filter("task-oriented")

    def test_evaluate_random_forest_cell(self, lab):
        report, forest = lab.evaluate_random_forest(1, "W2V-Chem", "naive")
        assert 0.5 < report.accuracy <= 1.0
        assert forest.feature_importances_ is not None

    def test_evaluate_lstm_cell(self, lab):
        report, model = lab.evaluate_lstm(1, "Random", "none")
        assert 0.0 <= report.f1 <= 1.0
        assert model.history

    def test_bert_pretrained(self, lab):
        assert lab.bert.pretrain_losses
        assert lab.bert.training is False


class TestGridSearch:
    def test_grid_search_random_forest(self, lab):
        result = lab.grid_search_random_forest(
            1,
            "Random",
            "none",
            grid={"n_estimators": [4, 8], "max_depth": [6]},
            n_folds=3,
            max_samples=300,
        )
        assert result.best_params["max_depth"] == 6
        assert result.best_params["n_estimators"] in (4, 8)
        assert 0.0 <= result.best_score <= 1.0
        assert len(result.all_scores) == 2
        # the refit best model can predict
        split = lab.ml_split(1)
        from repro.ml.features import FeatureExtractor

        extractor = FeatureExtractor(lab.embedding("Random"))
        predictions = result.best_model.predict(
            extractor.matrix(split.test.triples[:20])
        )
        assert set(predictions.tolist()) <= {0, 1}
