"""Fixture tests for every statcheck rule.

Each rule gets (at least) one malicious snippet proving it fires and one
clean snippet proving it stays quiet — the false-positive budget of the
linter is zero by construction, so every clean fixture here is load-bearing.
"""

import textwrap

from repro.statcheck import lint_source


def rules_found(source, filename="/fx/mod.py"):
    report = lint_source(textwrap.dedent(source), filename)
    return [finding.rule for finding in report.findings]


class TestDeterminismRules:
    def test_det001_flags_stdlib_global_rng(self):
        found = rules_found(
            """
            import random

            def pick(xs):
                random.shuffle(xs)
                return random.choice(xs)
            """
        )
        assert found.count("DET001") == 2

    def test_det001_clean_on_threaded_generator(self):
        found = rules_found(
            """
            from repro.utils.rng import ensure_rng

            def pick(xs, seed=0):
                rng = ensure_rng(seed)
                return xs[rng.integers(len(xs))]
            """
        )
        assert "DET001" not in found

    def test_det001_resolves_import_alias(self):
        found = rules_found(
            """
            import random as rnd

            def f():
                return rnd.random()
            """
        )
        assert "DET001" in found

    def test_det002_flags_numpy_legacy_global(self):
        found = rules_found(
            """
            import numpy as np

            def f():
                np.random.seed(0)
                return np.random.rand(3)
            """
        )
        assert found.count("DET002") == 2

    def test_det002_clean_on_generator_api(self):
        found = rules_found(
            """
            import numpy as np

            def f(seed=0):
                rng = np.random.default_rng(seed)
                return rng.normal(size=3)
            """
        )
        assert "DET002" not in found

    def test_det003_flags_wall_clock_and_entropy(self):
        found = rules_found(
            """
            import os
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now(), os.urandom(8)
            """
        )
        assert found.count("DET003") == 3

    def test_det003_clean_on_monotonic_clocks(self):
        found = rules_found(
            """
            import time

            def measure():
                return time.perf_counter(), time.monotonic()
            """
        )
        assert "DET003" not in found

    def test_det004_flags_set_fed_to_digest(self):
        found = rules_found(
            """
            from repro.utils.rng import stable_hash

            def key(tokens):
                return stable_hash(set(tokens))
            """
        )
        assert "DET004" in found

    def test_det004_flags_set_literal_to_json(self):
        found = rules_found(
            """
            import json

            def f(a, b):
                return json.dumps({a, b} | {1}, sort_keys=True)
            """
        )
        assert "DET004" in found

    def test_det004_clean_when_sorted_first(self):
        found = rules_found(
            """
            from repro.utils.rng import stable_hash

            def key(tokens):
                return stable_hash(sorted(set(tokens)))
            """
        )
        assert "DET004" not in found

    def test_det005_flags_magic_seed_default(self):
        found = rules_found(
            """
            def split(data, seed=42):
                return data

            def faulty(*, fault_seed=7):
                return fault_seed
            """
        )
        assert found.count("DET005") == 2

    def test_det005_clean_on_zero_default_and_dataclass_field(self):
        found = rules_found(
            """
            import dataclasses

            @dataclasses.dataclass
            class Config:
                seed: int = 42  # config knob, documented and diffable

            def split(data, seed=0):
                return data
            """
        )
        assert "DET005" not in found

    def test_det006_flags_unsorted_json(self):
        found = rules_found(
            """
            import json

            def save(payload):
                return json.dumps(payload)
            """
        )
        assert "DET006" in found

    def test_det006_clean_with_sort_keys(self):
        found = rules_found(
            """
            import json

            def save(payload, handle):
                json.dump(payload, handle, sort_keys=True)
            """
        )
        assert "DET006" not in found


class TestPurityRules:
    STAGES = "/fx/stages.py"

    def test_pur001_flags_module_state_in_builder(self):
        found = rules_found(
            """
            _cache = {}

            def _build_corpus(lab, inputs):
                _cache["corpus"] = inputs
                return _cache["corpus"]
            """,
            filename=self.STAGES,
        )
        assert "PUR001" in found

    def test_pur001_flags_global_declaration(self):
        found = rules_found(
            """
            counter = 0

            def _build_counted(lab, inputs):
                global counter
                counter += 1
                return counter
            """,
            filename=self.STAGES,
        )
        assert "PUR001" in found

    def test_pur001_clean_on_constants_and_locals(self):
        found = rules_found(
            """
            TASKS = (1, 2, 3)
            _SIMPLE_NAMES = ("a", "b")

            def _build_tasks(lab, inputs):
                local = {}
                for task in TASKS:
                    local[task] = _SIMPLE_NAMES
                return local
            """,
            filename=self.STAGES,
        )
        assert "PUR001" not in found

    def test_pur001_only_applies_to_stage_modules(self):
        found = rules_found(
            """
            _cache = {}

            def _build_thing(lab, inputs):
                _cache["x"] = 1
            """,
            filename="/fx/helpers.py",
        )
        assert "PUR001" not in found

    def test_pur002_flags_direct_io_in_builder(self):
        found = rules_found(
            """
            def _build_corpus(lab, inputs):
                with open("/tmp/corpus.txt") as handle:
                    return handle.read()
            """,
            filename=self.STAGES,
        )
        assert "PUR002" in found

    def test_pur002_flags_env_read_in_transitive_callee(self):
        found = rules_found(
            """
            import os

            def _resolve_root():
                return os.environ["DATA_ROOT"]

            def _build_corpus(lab, inputs):
                return _resolve_root()
            """,
            filename=self.STAGES,
        )
        assert "PUR002" in found

    def test_pur002_clean_on_pure_builder(self):
        found = rules_found(
            """
            def _tokenise(inputs):
                return [s.split() for s in inputs["sentences"]]

            def _build_vocab(lab, inputs):
                return sorted({t for s in _tokenise(inputs) for t in s})
            """,
            filename=self.STAGES,
        )
        assert "PUR002" not in found

    def test_pur003_flags_half_serializer_pair(self):
        found = rules_found(
            """
            from repro.pipeline.stage import Stage

            def build(lab, inputs):
                return inputs

            def save(value, path):
                pass

            STAGE = Stage(name="x", build=build, save=save)
            """
        )
        assert "PUR003" in found

    def test_pur003_clean_on_full_pair_or_neither(self):
        found = rules_found(
            """
            from repro.pipeline.stage import Stage

            A = Stage(name="a", build=print, save=print, load=print)
            B = Stage(name="b", build=print)
            """
        )
        assert "PUR003" not in found


class TestConcurrencyRules:
    def test_conc001_flags_unguarded_attribute_write(self):
        found = rules_found(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def reset(self):
                    self._items.clear()
            """
        )
        assert "CONC001" in found

    def test_conc001_clean_when_every_write_is_guarded(self):
        found = rules_found(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def reset(self):
                    with self._lock:
                        self._items.clear()
            """
        )
        assert "CONC001" not in found

    def test_conc001_exempts_locked_suffix_helpers(self):
        # The `_locked` suffix transfers the lock obligation to callers;
        # FLOW004 checks those call sites interprocedurally instead.
        found = rules_found(
            """
            import threading

            class Bucket:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._tokens = 0

                def add(self):
                    with self._lock:
                        self._tokens += 1

                def _refill_locked(self):
                    self._tokens += 1
            """
        )
        assert "CONC001" not in found

    def test_conc001_flags_unguarded_module_global(self):
        found = rules_found(
            """
            import threading

            _lock = threading.Lock()
            _registry = {}

            def register(key, value):
                with _lock:
                    _registry[key] = value

            def reset():
                _registry.clear()
            """
        )
        assert "CONC001" in found

    def test_conc001_clean_on_local_shadowing_global(self):
        found = rules_found(
            """
            import threading

            _lock = threading.Lock()
            _registry = {}

            def register(key, value):
                with _lock:
                    _registry[key] = value

            def snapshot():
                _registry_copy = {}
                _registry_copy.update({"a": 1})
                return _registry_copy
            """
        )
        assert "CONC001" not in found

    def test_conc002_flags_check_then_act(self):
        found = rules_found(
            """
            def clean(path):
                if path.exists():
                    path.unlink()
            """
        )
        assert "CONC002" in found

    def test_conc002_clean_on_idempotent_flags_and_reads(self):
        found = rules_found(
            """
            import shutil

            def clean(path):
                path.unlink(missing_ok=True)
                if path.exists():
                    return path.read_text()
                shutil.rmtree(path, ignore_errors=True)
            """
        )
        assert "CONC002" not in found


class TestContractRules:
    def test_res001_flags_swallowed_broad_except(self):
        found = rules_found(
            """
            def deliver(client, prompt):
                try:
                    return client.complete(prompt)
                except Exception:
                    return None
            """
        )
        assert "RES001" in found

    def test_res001_flags_swallowed_chat_client_error(self):
        found = rules_found(
            """
            from repro.llm.client import ChatClientError

            def deliver(client, prompt):
                try:
                    return client.complete(prompt)
                except (ChatClientError, ValueError):
                    return "failed"
            """
        )
        assert "RES001" in found

    def test_res001_clean_when_reraised(self):
        found = rules_found(
            """
            def deliver(client, prompt):
                try:
                    return client.complete(prompt)
                except Exception:
                    raise
            """
        )
        assert "RES001" not in found

    def test_res001_clean_when_metric_recorded(self):
        found = rules_found(
            """
            from repro.obs.trace import get_tracer

            def deliver(client, prompt):
                try:
                    return client.complete(prompt)
                except Exception:
                    get_tracer().count("client_failures")
                    return None
            """
        )
        assert "RES001" not in found

    def test_res001_narrow_handlers_are_fine(self):
        found = rules_found(
            """
            def load(path):
                try:
                    return path.read_text()
                except FileNotFoundError:
                    return None
            """
        )
        assert "RES001" not in found

    def test_obs001_flags_span_without_with(self):
        found = rules_found(
            """
            from repro.obs.trace import span

            def run():
                sp = span("stage.build")
                return sp
            """
        )
        assert "OBS001" in found

    def test_obs001_clean_with_context_manager(self):
        found = rules_found(
            """
            from repro.obs.trace import span

            def run():
                with span("stage.build"):
                    return 1
            """
        )
        assert "OBS001" not in found

    def test_obs002_flags_wall_clock_duration(self):
        found = rules_found(
            """
            import time

            def timed(work):
                start = time.time()
                work()
                return time.time() - start
            """
        )
        assert found.count("OBS002") == 1

    def test_obs002_flags_two_saved_wall_reads(self):
        found = rules_found(
            """
            import time

            def timed(work):
                t0 = time.time()
                work()
                t1 = time.time()
                return t1 - t0
            """
        )
        assert found.count("OBS002") == 1

    def test_obs002_flags_datetime_now_duration(self):
        found = rules_found(
            """
            import datetime

            def timed(work):
                start = datetime.datetime.now()
                work()
                return datetime.datetime.now() - start
            """
        )
        assert found.count("OBS002") == 1

    def test_obs002_clean_on_perf_counter(self):
        found = rules_found(
            """
            import time

            def timed(work):
                start = time.perf_counter()
                work()
                return time.perf_counter() - start
            """
        )
        assert "OBS002" not in found

    def test_obs002_clean_on_epoch_comparisons(self):
        # Comparing a wall timestamp against a *stored* epoch (file mtime,
        # an entry's created time) is the wall clock's legitimate job.
        found = rules_found(
            """
            import time
            from pathlib import Path

            def lock_age(path):
                return time.time() - Path(path).stat().st_mtime

            def entry_age(info):
                now = time.time()
                return now - info.created_unix
            """
        )
        assert "OBS002" not in found

    def test_obs002_scope_local_name_tracking(self):
        # `start` is wall-clock in f() but a perf_counter in g(); only
        # f()'s subtraction may fire.
        found = rules_found(
            """
            import time

            def f(work):
                start = time.time()
                work()
                return time.time() - start

            def g(work):
                start = time.perf_counter()
                work()
                return time.perf_counter() - start
            """
        )
        assert found.count("OBS002") == 1


class TestServingRules:
    def test_srv001_flags_http_server_import_outside_serve(self):
        found = rules_found(
            """
            from http.server import HTTPServer

            def run():
                return HTTPServer(("", 0), None)
            """
        )
        assert "SRV001" in found

    def test_srv001_flags_socket_call_via_alias(self):
        found = rules_found(
            """
            import socket as sk

            def connect(host):
                return sk.create_connection((host, 80))
            """
        )
        assert "SRV001" in found

    def test_srv001_flags_socketserver_import(self):
        found = rules_found(
            """
            import socketserver
            """
        )
        assert "SRV001" in found

    def test_srv001_clean_inside_a_serve_module(self):
        found = rules_found(
            """
            from http.server import ThreadingHTTPServer
            import socket

            def bind():
                return socket.socket()
            """,
            filename="/fx/serve.py",
        )
        assert "SRV001" not in found

    def test_srv001_clean_on_http_client(self):
        # Being a *client* of a server (bench traffic, smoke tests) is
        # fine anywhere; only server-side transport is quarantined.
        found = rules_found(
            """
            import http.client

            def probe(port):
                return http.client.HTTPConnection("127.0.0.1", port)
            """
        )
        assert "SRV001" not in found


class TestDirectClockRule:
    def test_res002_flags_time_sleep_in_delivery(self):
        found = rules_found(
            """
            import time

            def hedge_wait(delay):
                time.sleep(delay)
            """,
            filename="/fx/delivery.py",
        )
        assert "RES002" in found

    def test_res002_flags_monotonic_via_alias(self):
        found = rules_found(
            """
            from time import monotonic as now

            def elapsed(start):
                return now() - start
            """,
            filename="/fx/delivery.py",
        )
        assert "RES002" in found

    def test_res002_clean_outside_delivery(self):
        found = rules_found(
            """
            import time

            def wait():
                time.sleep(0.1)
            """
        )
        assert "RES002" not in found

    def test_res002_clean_on_injected_clock(self):
        found = rules_found(
            """
            def wait(clock, delay):
                clock.sleep(delay)
                return clock.monotonic()
            """,
            filename="/fx/delivery.py",
        )
        assert "RES002" not in found

    def test_res002_exempts_the_sanctioned_shell_module(self, tmp_path):
        package = tmp_path / "delivery"
        package.mkdir()
        (package / "__init__.py").write_text("", encoding="utf-8")
        shell = package / "shell.py"
        shell.write_text(
            "import time\n\n\ndef wall_sleep(s):\n    time.sleep(s)\n",
            encoding="utf-8",
        )
        report = lint_source(
            shell.read_text(encoding="utf-8"), str(shell)
        )
        assert "RES002" not in [f.rule for f in report.findings]
        # ...while a sibling non-shell module in the same package is flagged.
        engine = package / "engine.py"
        engine.write_text(
            "import time\n\n\ndef nap(s):\n    time.sleep(s)\n",
            encoding="utf-8",
        )
        report = lint_source(
            engine.read_text(encoding="utf-8"), str(engine)
        )
        assert "RES002" in [f.rule for f in report.findings]


class TestPerfRules:
    PIPELINE = "/fx/pipeline.py"

    def test_perf001_flags_implicit_np_load_in_pipeline(self):
        found = rules_found(
            """
            import numpy as np

            def read_matrix(path):
                return np.load(path)
            """,
            filename=self.PIPELINE,
        )
        assert "PERF001" in found

    def test_perf001_clean_with_explicit_mmap_mode(self):
        found = rules_found(
            """
            import numpy as np

            def read_matrix(path, use_mmap):
                return np.load(path, mmap_mode="r" if use_mmap else None)
            """,
            filename=self.PIPELINE,
        )
        assert "PERF001" not in found

    def test_perf001_clean_with_explicit_copy_intent(self):
        found = rules_found(
            """
            import numpy as np

            def read_small(path):
                return np.load(path, mmap_mode=None)
            """,
            filename=self.PIPELINE,
        )
        assert "PERF001" not in found

    def test_perf001_ignores_modules_outside_pipeline(self):
        found = rules_found(
            """
            import numpy as np

            def read_matrix(path):
                return np.load(path)
            """,
            filename="/fx/persistence.py",
        )
        assert "PERF001" not in found

    def test_perf001_resolves_numpy_alias(self):
        found = rules_found(
            """
            import numpy

            def read_matrix(path):
                return numpy.load(path)
            """,
            filename=self.PIPELINE,
        )
        assert "PERF001" in found
