"""Tests for atomic writes and the artefact writers routed through them."""

import numpy as np
import pytest

from repro.utils.atomic import atomic_write


class Boom(RuntimeError):
    pass


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as handle:
            handle.write("hello")
        assert target.read_text() == "hello"

    def test_binary_mode(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target, "wb") as handle:
            handle.write(b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError, match="modes"):
            with atomic_write(tmp_path / "x", "r"):
                pass
        with pytest.raises(ValueError, match="modes"):
            with atomic_write(tmp_path / "x", "a"):
                pass

    def test_crash_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("previous")
        with pytest.raises(Boom):
            with atomic_write(target) as handle:
                handle.write("partial new conte")
                raise Boom()
        assert target.read_text() == "previous"

    def test_crash_leaves_no_file_when_target_was_absent(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(Boom):
            with atomic_write(target) as handle:
                handle.write("doomed")
                raise Boom()
        assert not target.exists()

    def test_no_temp_file_litter(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as handle:
            handle.write("ok")
        with pytest.raises(Boom):
            with atomic_write(target) as handle:
                raise Boom()
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        with atomic_write(target) as handle:
            handle.write("deep")
        assert target.read_text() == "deep"

    def test_overwrite_replaces_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_write(target) as handle:
            handle.write("new")
        assert target.read_text() == "new"


class TestArtefactWritersAreAtomic:
    def test_table_save_crash_preserves_previous(self, tmp_path, monkeypatch):
        from repro.core.reporting import Table
        from repro.utils import atomic

        path = tmp_path / "table.txt"
        table = Table("t", ["a"])
        table.add_row(1)
        table.save(str(path))
        before = path.read_text()

        def boom(*args, **kwargs):
            raise Boom()

        # A failure while flushing the new table must not clobber the old.
        monkeypatch.setattr(atomic.os, "fsync", boom)
        table.add_row(2)
        with pytest.raises(Boom):
            table.save(str(path))
        assert path.read_text() == before

    def test_save_embeddings_crash_preserves_previous(self, tmp_path, monkeypatch):
        from repro.utils import persistence

        class FakeEmbedding:
            name = "fake"
            vocabulary = ["a", "b"]
            matrix = np.zeros((2, 2), dtype=np.float32)

        path = tmp_path / "emb.npz"
        persistence.save_embeddings(FakeEmbedding(), str(path))
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise Boom()

        monkeypatch.setattr(persistence.np, "savez_compressed", boom)
        with pytest.raises(Boom):
            persistence.save_embeddings(FakeEmbedding(), str(path))
        assert path.read_bytes() == before

    def test_write_manifest_crash_preserves_previous(self, tmp_path, monkeypatch):
        import json

        from repro.obs import manifest as manifest_mod

        path = tmp_path / "run.manifest.json"
        manifest_mod.write_manifest(path)
        before = path.read_text()
        assert json.loads(before)["format"] == manifest_mod.MANIFEST_FORMAT

        def boom(*args, **kwargs):
            raise Boom()

        monkeypatch.setattr(manifest_mod.json, "dump", boom)
        with pytest.raises(Boom):
            manifest_mod.write_manifest(path)
        assert path.read_text() == before
