"""Tests for the TransE structural baseline."""

import numpy as np
import pytest

from repro.core.datasets import train_test_split_9_1
from repro.kg.transe import TransE, TransEConfig


@pytest.fixture(scope="module")
def task1_split(task1_dataset):
    return train_test_split_9_1(task1_dataset, seed=0)


@pytest.fixture(scope="module")
def fitted(task1_split):
    config = TransEConfig(dim=32, epochs=100, norm=2, seed=0)
    return TransE(config).fit(list(task1_split.train))


class TestTransEConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransEConfig(dim=0)
        with pytest.raises(ValueError):
            TransEConfig(margin=0)
        with pytest.raises(ValueError):
            TransEConfig(norm=3)


class TestTransETraining:
    def test_beats_chance_on_task1(self, fitted, task1_split):
        """Random negatives break graph structure: TransE must spot them.

        On this sparse synthetic hierarchy the structural signal is weak
        (most test entities have very few training edges), so the bar is
        modest — the text-based paradigms winning by a wide margin is
        exactly the comparison bench_ablation_structure_vs_text draws.
        """
        test = list(task1_split.test)
        gold = np.array([t.label for t in test])
        accuracy = (fitted.predict(test) == gold).mean()
        assert accuracy > 0.52

    def test_positive_triples_score_higher(self, fitted, task1_split):
        test = list(task1_split.test)
        scores = fitted.score(test)
        finite = np.isfinite(scores)
        gold = np.array([t.label for t in test])[finite]
        scores = scores[finite]
        assert scores[gold == 1].mean() > scores[gold == 0].mean()

    def test_unknown_entities_score_minus_inf(self, fitted, task1_dataset):
        from repro.core.triples import LabeledTriple
        from repro.ontology.relations import IS_A

        ghost = LabeledTriple("X:1", "ghost", IS_A, "X:2", "phantom", 1)
        scores = fitted.score([ghost])
        assert scores[0] == -np.inf
        assert fitted.predict([ghost])[0] == 0

    def test_requires_positives(self, task1_split):
        negatives = [t for t in task1_split.train if t.label == 0][:10]
        with pytest.raises(ValueError, match="positive"):
            TransE().fit(negatives)

    def test_deterministic(self, task1_split):
        train = list(task1_split.train)[:400]
        config = TransEConfig(dim=8, epochs=3, seed=5)
        a = TransE(config).fit(train)
        b = TransE(config).fit(train)
        assert np.allclose(a.entity_vectors, b.entity_vectors)
        assert a.threshold == b.threshold

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TransE().score([])

    def test_l2_norm_variant_trains(self, task1_split):
        train = list(task1_split.train)[:400]
        model = TransE(TransEConfig(dim=8, epochs=3, norm=2, seed=0)).fit(train)
        assert model.entity_vectors is not None

    def test_entity_norm_constraint(self, fitted):
        """Entity vectors stay within (slightly above, pre-renorm) the unit ball."""
        norms = np.linalg.norm(fitted.entity_vectors, axis=1)
        assert norms.max() < 2.0
