"""Tests for the delivery engine's building blocks.

TokenBucket, DeadlineBudget, ResponseCache, LatencyClient, and
DeliveryBackend are each pure functions of an injectable clock, so every
test here runs on a :class:`FaultClock` and finishes instantly.
"""

import pytest

from repro.delivery import (
    DeadlineBudget,
    DeadlineExceeded,
    DeliveryBackend,
    LatencyClient,
    ResponseCache,
    TokenBucket,
)
from repro.llm.client import ChatClientError, EchoClient
from repro.pipeline.store import ArtifactStore
from repro.resilience.faults import FaultClock
from repro.resilience.retry import CircuitBreaker, RetryPolicy


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=FaultClock())
        assert bucket.available() == pytest.approx(4.0)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FaultClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FaultClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(3.0)

    def test_acquire_sleeps_on_the_injected_clock(self):
        clock = FaultClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.acquire()
        assert bucket.acquire()  # must wait ~0.25s of virtual time
        assert clock.sleeps, "the wait must go through the injected clock"
        assert clock.now == pytest.approx(0.25)

    def test_acquire_respects_max_wait(self):
        clock = FaultClock()
        bucket = TokenBucket(rate=0.5, burst=1.0, clock=clock)
        assert bucket.acquire()
        # Next token is 2s away; a 0.1s budget cannot cover it.
        assert not bucket.acquire(max_wait_s=0.1)

    def test_disabled_bucket_never_blocks(self):
        bucket = TokenBucket(rate=None, clock=FaultClock())
        for _ in range(100):
            assert bucket.try_acquire()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestDeadlineBudget:
    def test_remaining_counts_down(self):
        clock = FaultClock()
        budget = DeadlineBudget(1.0, clock=clock)
        assert budget.remaining() == pytest.approx(1.0)
        clock.advance(0.4)
        assert budget.remaining() == pytest.approx(0.6)
        assert not budget.expired()

    def test_expired_clamps_to_zero(self):
        clock = FaultClock()
        budget = DeadlineBudget(0.5, clock=clock)
        clock.advance(2.0)
        assert budget.expired()
        assert budget.remaining() == 0.0

    def test_check_raises_a_typed_error(self):
        clock = FaultClock()
        budget = DeadlineBudget(0.1, clock=clock)
        budget.check("early")  # inside the budget: fine
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded):
            budget.check("late")

    def test_unlimited_budget_never_expires(self):
        clock = FaultClock()
        budget = DeadlineBudget(None, clock=clock)
        clock.advance(1e6)
        assert budget.remaining() is None
        assert not budget.expired()
        budget.check("always fine")

    def test_deadline_exceeded_is_not_retryable(self):
        assert DeadlineExceeded("late").retryable is False


class TestResponseCache:
    def test_round_trip(self, tmp_path):
        cache = ResponseCache(tmp_path / "cache")
        assert cache.get("gpt-4", "prompt", 0) is None
        cache.put("gpt-4", "prompt", 0, "True.")
        assert cache.get("gpt-4", "prompt", 0) == "True."

    def test_key_separates_model_prompt_and_repeat(self, tmp_path):
        cache = ResponseCache(tmp_path / "cache")
        cache.put("gpt-4", "prompt", 0, "A")
        assert cache.get("gpt-4", "prompt", 1) is None
        assert cache.get("gpt-3.5", "prompt", 0) is None
        assert cache.get("gpt-4", "other prompt", 0) is None

    def test_keys_are_stable_across_instances(self, tmp_path):
        first = ResponseCache(tmp_path / "cache")
        first.put("gpt-4", "prompt", 2, "False.")
        second = ResponseCache(ArtifactStore(tmp_path / "cache"))
        assert second.get("gpt-4", "prompt", 2) == "False."

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResponseCache(tmp_path / "cache")
        cache.put("gpt-4", "prompt", 0, "True.")
        for response in (tmp_path / "cache").rglob("response.json"):
            response.write_text("{not json", encoding="utf-8")
        assert cache.get("gpt-4", "prompt", 0) is None


class TestLatencyClient:
    def test_delay_is_deterministic_per_call(self):
        client = LatencyClient(
            EchoClient(), latency_s=0.002, jitter=0.5, seed=3,
            clock=FaultClock(),
        )
        assert client.delay_s("p", 0) == client.delay_s("p", 0)
        assert client.delay_s("p", 0) != client.delay_s("p", 1)

    def test_sleeps_on_the_injected_clock(self):
        clock = FaultClock()
        client = LatencyClient(EchoClient(), latency_s=0.01, clock=clock)
        assert client.complete_indexed("p", 0) == "True"
        assert clock.sleeps == [pytest.approx(0.01)]

    def test_jitter_bounds(self):
        client = LatencyClient(
            EchoClient(), latency_s=1.0, jitter=0.2, clock=FaultClock()
        )
        for repeat in range(50):
            assert 0.8 <= client.delay_s("p", repeat) <= 1.2


class _FlakyClient(EchoClient):
    """Fails the first ``n_failures`` indexed calls, then succeeds."""

    def __init__(self, n_failures: int):
        super().__init__("True")
        self.n_failures = n_failures
        self.calls = 0

    def complete_indexed(self, prompt, repeat, *, timeout_s=None):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise ChatClientError("boom", retryable=True, kind="network")
        return self.complete(prompt)


class TestDeliveryBackend:
    def test_deliver_retries_transient_failures(self):
        backend = DeliveryBackend(
            "b0",
            _FlakyClient(2),
            retry=RetryPolicy(base_delay=0.01, clock=FaultClock(), seed=0),
        )
        assert backend.deliver("p", 0) == "True"

    def test_open_breaker_marks_unhealthy(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        backend = DeliveryBackend("b0", EchoClient(), breaker=breaker)
        assert backend.healthy()
        breaker.record_failure()
        assert not backend.healthy()

    def test_rate_limit_wait_is_bounded_by_deadline(self):
        clock = FaultClock()
        backend = DeliveryBackend(
            "b0",
            EchoClient(),
            bucket=TokenBucket(rate=0.1, burst=1.0, clock=clock),
            clock=clock,
        )
        deadline = DeadlineBudget(0.5, clock=clock)
        assert backend.deliver("p", 0, deadline) == "True"
        # The next token is 10s away; the 0.5s budget cannot cover it.
        with pytest.raises(DeadlineExceeded):
            backend.deliver("p", 1, DeadlineBudget(0.5, clock=clock))

    def test_no_retry_after_deadline_expiry(self):
        clock = FaultClock()
        client = _FlakyClient(10)
        backend = DeliveryBackend(
            "b0",
            client,
            retry=RetryPolicy(
                max_attempts=5, base_delay=10.0, clock=clock, seed=0
            ),
            clock=clock,
        )
        with pytest.raises(DeadlineExceeded):
            backend.deliver("p", 0, DeadlineBudget(0.05, clock=clock))
        # The first backoff (10s) blows the 0.05s budget; the second attempt
        # dies on the budget check before touching the client — the full
        # 5-attempt schedule must NOT be burned.
        assert client.calls == 1
