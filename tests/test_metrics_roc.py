"""Tests for the ROC curve and AUC."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.roc import auc, roc_auc_score, roc_curve


class TestRocCurve:
    def test_perfect_separation(self):
        fpr, tpr, _ = roc_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_inverted_scores(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        score = rng.random(4000)
        assert roc_auc_score(y, score) == pytest.approx(0.5, abs=0.05)

    def test_ties_collapsed(self):
        fpr, tpr, thresholds = roc_curve([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5])
        # One distinct score -> start point plus a single vertex.
        assert len(thresholds) == 2
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="single class"):
            roc_auc_score([1, 1, 1], [0.1, 0.5, 0.9])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_curve([0, 1], [0.5])

    @given(st.integers(0, 2**32 - 1))
    def test_auc_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        y = np.concatenate([[0, 1], rng.integers(0, 2, size=20)])
        scores = rng.random(22)
        value = roc_auc_score(y, scores)
        assert 0.0 <= value <= 1.0

    @given(st.integers(0, 2**32 - 1))
    def test_auc_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        y = np.concatenate([[0, 1], rng.integers(0, 2, size=20)])
        scores = rng.random(22)
        assert roc_auc_score(y, scores) == pytest.approx(
            roc_auc_score(y, np.exp(3 * scores))
        )


class TestAuc:
    def test_unit_square(self):
        assert auc([0, 1], [1, 1]) == pytest.approx(1.0)

    def test_triangle(self):
        assert auc([0, 1], [0, 1]) == pytest.approx(0.5)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            auc([0.5], [0.5])
