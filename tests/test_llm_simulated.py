"""Tests for the simulated chat models."""

import numpy as np
import pytest

from repro.core.triples import LabeledTriple
from repro.llm.icl import FALSE, TRUE, UNCLASSIFIED, parse_response
from repro.llm.prompts import PromptVariant, render_prompt
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT35_PROFILE,
    GPT4_PROFILE,
    BehaviourProfile,
    SimulatedChatModel,
    TaskAbility,
    truth_table,
)
from repro.ontology.relations import IS_A


def triples(n, label, prefix):
    return [
        LabeledTriple(f"{prefix}{i}", f"{prefix} entity {i}", IS_A,
                      f"{prefix}o{i}", f"{prefix} class {i}", label)
        for i in range(n)
    ]


POS = triples(3, 1, "p")
NEG = triples(3, 0, "n")


def make_query(i, label):
    return LabeledTriple(f"q{i}", f"query entity {i}", IS_A,
                         f"qo{i}", f"query class {i}", label)


def make_client(profile, queries, task=1, seed=0):
    truth = truth_table(POS + NEG + queries)
    return SimulatedChatModel(profile, truth, task, seed=seed)


class TestProfiles:
    def test_paper_profiles_cover_three_tasks(self):
        for profile in (GPT4_PROFILE, GPT35_PROFILE, BIOGPT_PROFILE):
            for task in (1, 2, 3):
                ability = profile.ability(task)
                assert 0.0 <= ability.p_pos <= 1.0

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            GPT4_PROFILE.ability(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskAbility(p_pos=1.5, p_neg=0.5)
        with pytest.raises(ValueError):
            BehaviourProfile("x", {1: TaskAbility(0.5, 0.5)}, order_bias=2.0)


class TestSimulatedBehaviour:
    def test_deterministic_first_delivery(self):
        queries = [make_query(i, i % 2) for i in range(10)]
        a = make_client(GPT4_PROFILE, queries, seed=1)
        b = make_client(GPT4_PROFILE, queries, seed=1)
        prompt = render_prompt(POS, NEG, queries[0])
        assert a.complete(prompt) == b.complete(prompt)

    def test_gpt4_mostly_correct_on_task1(self):
        queries = [make_query(i, i % 2) for i in range(200)]
        client = make_client(GPT4_PROFILE, queries, task=1, seed=0)
        correct = 0
        for query in queries:
            prompt = render_prompt(POS, NEG, query)
            answer = parse_response(client.complete(prompt))
            predicted = 1 if answer == TRUE else 0
            correct += predicted == query.label
        assert correct / len(queries) > 0.8

    def test_biogpt_order_bias_toward_false(self):
        queries = [make_query(i, 1) for i in range(150)]  # all positive
        client = make_client(BIOGPT_PROFILE, queries, task=1, seed=0)
        false_count = 0
        for query in queries:
            prompt = render_prompt(POS, NEG, query)  # blocked: last is False
            if parse_response(client.complete(prompt)) == FALSE:
                false_count += 1
        assert false_count / len(queries) > 0.5

    def test_abstain_only_with_variant2(self):
        queries = [make_query(i, i % 2) for i in range(200)]
        client = make_client(GPT35_PROFILE, queries, task=1, seed=0)
        base_abstains = variant2_abstains = 0
        for query in queries:
            base = render_prompt(POS, NEG, query, PromptVariant.BASE)
            abstain = render_prompt(POS, NEG, query, PromptVariant.ABSTAIN)
            if parse_response(client.complete(base)) == UNCLASSIFIED:
                base_abstains += 1
            if parse_response(client.complete(abstain)) == UNCLASSIFIED:
                variant2_abstains += 1
        assert base_abstains == 0
        assert variant2_abstains > 5

    def test_consistency_controls_repeat_flips(self):
        queries = [make_query(i, i % 2) for i in range(100)]
        flaky_profile = BehaviourProfile(
            "flaky", {1: TaskAbility(0.5, 0.5)}, consistency=0.0
        )
        stable_profile = BehaviourProfile(
            "stable", {1: TaskAbility(0.5, 0.5)}, consistency=1.0
        )

        def flip_rate(profile):
            client = make_client(profile, queries, seed=0)
            flips = 0
            for query in queries:
                prompt = render_prompt(POS, NEG, query)
                first = client.complete(prompt)
                second = client.complete(prompt)
                flips += first != second
            return flips / len(queries)

        assert flip_rate(stable_profile) == 0.0
        assert flip_rate(flaky_profile) > 0.2

    def test_unknown_query_answered_by_coin(self):
        client = SimulatedChatModel(GPT4_PROFILE, {}, 1, seed=0)
        prompt = render_prompt(POS, NEG, make_query(0, 1))
        answer = parse_response(client.complete(prompt))
        assert answer in (TRUE, FALSE)

    def test_reset_restores_first_delivery(self):
        queries = [make_query(0, 1)]
        client = make_client(BIOGPT_PROFILE, queries, seed=0)
        prompt = render_prompt(POS, NEG, queries[0])
        first = client.complete(prompt)
        client.complete(prompt)
        client.reset()
        assert client.complete(prompt) == first


class TestParseResponse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("True", TRUE),
            ("  false.  ", FALSE),
            ("<classification>: True", TRUE),
            ("The triple is False.", FALSE),
            ("I don't know", UNCLASSIFIED),
            ("I do not know the answer", UNCLASSIFIED),
            ("true and false", UNCLASSIFIED),
            ("something irrelevant", UNCLASSIFIED),
            ("", UNCLASSIFIED),
        ],
    )
    def test_parsing(self, text, expected):
        assert parse_response(text) == expected


class TestCompleteIndexed:
    """The engine entry point is pure in (prompt, repeat)."""

    def client(self, profile=GPT35_PROFILE, seed=0):
        return SimulatedChatModel(profile, {}, 1, seed=seed)

    def test_matches_the_stateful_repeat_sequence(self):
        stateful = self.client()
        indexed = self.client()
        prompt = "<triple>: (a, is_a, b)\n<classification>:"
        stateful_texts = [stateful.complete(prompt) for _ in range(5)]
        indexed_texts = [
            indexed.complete_indexed(prompt, repeat) for repeat in range(5)
        ]
        assert indexed_texts == stateful_texts

    def test_pure_under_any_call_order(self):
        client = self.client(seed=3)
        prompt = "<triple>: (x, is_a, y)\n<classification>:"
        forward = [client.complete_indexed(prompt, r) for r in range(4)]
        backward = [client.complete_indexed(prompt, r) for r in (3, 2, 1, 0)]
        assert backward == list(reversed(forward)) == forward[::-1]
        # Interleaving unrelated prompts changes nothing either.
        client.complete_indexed("<triple>: (p, is_a, q)\n<classification>:", 0)
        assert client.complete_indexed(prompt, 2) == forward[2]

    def test_does_not_touch_delivery_history(self):
        client = self.client()
        prompt = "<triple>: (a, is_a, b)\n<classification>:"
        client.complete_indexed(prompt, 3)
        # The stateful counter is untouched: the next complete() is repeat 0.
        assert client.complete(prompt) == client.complete_indexed(prompt, 0)

    def test_replicas_answer_identically(self):
        prompt = "<triple>: (m, is_a, n)\n<classification>:"
        replicas = [self.client(seed=7) for _ in range(3)]
        answers = {r.complete_indexed(prompt, 2) for r in replicas}
        assert len(answers) == 1
