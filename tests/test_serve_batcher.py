"""Deterministic MicroBatcher tests: the policy on a fake clock, the
worker loop on the real one."""

import threading
import time

import pytest

from repro.core.triples import LabeledTriple
from repro.ontology.relations import HAS_ROLE
from repro.serve.batcher import MicroBatcher, QueueFullError


class FakeClock:
    """Manually advanced monotonic clock (matches the resilience Clock API)."""

    def __init__(self):
        self.now = 100.0
        self.slept = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


def make_triples(n, tag="t"):
    return [
        LabeledTriple(
            subject_id=f"s:{tag}{i}",
            subject_name=f"subject {tag}{i}",
            relation=HAS_ROLE,
            object_id=f"o:{tag}{i}",
            object_name=f"object {tag}{i}",
            label=0,
        )
        for i in range(n)
    ]


def echo_handler(triples):
    """Labels every triple 1; length-preserving, order-preserving."""
    return [1] * len(triples)


class TestPolicyOnFakeClock:
    def test_coalesces_up_to_max_batch(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=4, max_wait_s=1.0, clock=clock
        )
        batcher.submit(make_triples(2, "a"))
        batcher.submit(make_triples(2, "b"))
        ready = batcher.poll()
        assert len(ready) == 2  # 4 triples waiting == max_batch -> flush
        assert sum(len(item.triples) for item in ready) == 4
        assert batcher.poll() == []

    def test_holds_small_batch_until_max_wait(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=64, max_wait_s=0.005, clock=clock
        )
        batcher.submit(make_triples(1))
        assert batcher.poll() == []  # young and small: keep waiting
        clock.advance(0.004)
        assert batcher.poll() == []
        clock.advance(0.002)  # oldest now waited 6 ms > 5 ms
        ready = batcher.poll()
        assert len(ready) == 1

    def test_zero_max_wait_is_the_single_item_fast_path(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=64, max_wait_s=0.0, clock=clock
        )
        batcher.submit(make_triples(1))
        assert len(batcher.poll()) == 1  # no coalescing window at all

    def test_takes_whole_requests_up_to_the_triple_budget(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=4, max_wait_s=0.0, clock=clock
        )
        batcher.submit(make_triples(3, "a"))
        batcher.submit(make_triples(3, "b"))  # would exceed the budget
        ready = batcher.poll()
        assert [len(item.triples) for item in ready] == [3]
        assert [len(item.triples) for item in batcher.poll()] == [3]

    def test_oversized_request_still_dispatches_alone(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=4, max_wait_s=0.0, clock=clock
        )
        batcher.submit(make_triples(10))
        ready = batcher.poll()
        assert len(ready) == 1
        assert len(ready[0].triples) == 10

    def test_queue_full_raises(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=4, max_wait_s=1.0, max_queue=2, clock=clock
        )
        batcher.submit(make_triples(1))
        batcher.submit(make_triples(1))
        with pytest.raises(QueueFullError):
            batcher.submit(make_triples(1))

    def test_flush_drains_everything(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            echo_handler, max_batch=64, max_wait_s=60.0, clock=clock
        )
        batcher.submit(make_triples(1, "a"))
        batcher.submit(make_triples(1, "b"))
        assert batcher.poll() == []  # policy says wait...
        assert len(batcher.flush()) == 2  # ...flush overrides it
        assert batcher.flush() == []


class TestDispatch:
    def test_results_fan_back_out_per_request(self):
        clock = FakeClock()
        calls = []

        def handler(triples):
            calls.append(len(triples))
            return [i % 2 for i in range(len(triples))]

        batcher = MicroBatcher(handler, max_batch=8, max_wait_s=0.0, clock=clock)
        a = batcher.submit(make_triples(2, "a"))
        b = batcher.submit(make_triples(3, "b"))
        batcher.dispatch(batcher.flush())
        assert calls == [5]  # one vectorised call for both requests
        assert a.result == [0, 1]
        assert b.result == [0, 1, 0]
        assert a.batch_size == b.batch_size == 5

    def test_handler_error_lands_on_every_item(self):
        clock = FakeClock()

        def broken(triples):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(broken, max_batch=8, max_wait_s=0.0, clock=clock)
        a = batcher.submit(make_triples(1, "a"))
        b = batcher.submit(make_triples(1, "b"))
        batcher.dispatch(batcher.flush())
        assert isinstance(a.error, RuntimeError)
        assert isinstance(b.error, RuntimeError)
        assert a.result is None

    def test_wrong_arity_handler_is_an_error_not_a_misroute(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            lambda triples: [1], max_batch=8, max_wait_s=0.0, clock=clock
        )
        a = batcher.submit(make_triples(2))
        batcher.dispatch(batcher.flush())
        assert a.error is not None
        assert "labels" in str(a.error)

    def test_snapshot_counts_batches_and_sizes(self):
        clock = FakeClock()
        batcher = MicroBatcher(echo_handler, max_batch=8, max_wait_s=0.0, clock=clock)
        batcher.submit(make_triples(2, "a"))
        batcher.submit(make_triples(4, "b"))
        batcher.dispatch(batcher.flush())
        snapshot = batcher.snapshot()
        assert snapshot["batches"] == 1
        assert snapshot["requests"] == 2
        assert snapshot["triples"] == 6
        assert snapshot["batch_size_max"] == 6
        assert snapshot["batch_size_mean"] == 6.0
        assert snapshot["pending"] == 0


class TestWorkerThread:
    def test_concurrent_submitters_all_get_answers(self):
        batcher = MicroBatcher(
            echo_handler, max_batch=16, max_wait_s=0.002
        ).start()
        items = []
        collect = threading.Lock()

        def client(i):
            item = batcher.submit(make_triples(2, f"c{i}"))
            assert item.wait(timeout=10)
            with collect:
                items.append(item)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        batcher.stop()
        assert len(items) == 20
        assert all(item.result == [1, 1] for item in items)
        snapshot = batcher.snapshot()
        assert snapshot["requests"] == 20
        assert snapshot["triples"] == 40

    def test_stop_drains_pending_work(self):
        # A slow trickle: submit then immediately stop; the drain must
        # still answer the waiting item.
        batcher = MicroBatcher(echo_handler, max_batch=64, max_wait_s=5.0).start()
        item = batcher.submit(make_triples(1))
        batcher.stop()
        assert item.wait(timeout=1)
        assert item.result == [1]

    def test_submit_after_stop_is_an_error(self):
        batcher = MicroBatcher(echo_handler).start()
        batcher.stop()
        with pytest.raises(RuntimeError):
            batcher.submit(make_triples(1))
