"""Tests for the ontology data model."""

import pytest

from repro.ontology.model import Entity, Ontology, Statement, SubOntology
from repro.ontology.relations import HAS_ROLE, IS_A


def make_ontology():
    onto = Ontology("t")
    for ident, name in [("E:1", "acid"), ("E:2", "organic acid"), ("E:3", "butanoic acid")]:
        onto.add_entity(Entity(ident, name))
    onto.add_entity(Entity("E:4", "metabolite", SubOntology.ROLE))
    return onto


class TestEntity:
    def test_requires_identifier_and_name(self):
        with pytest.raises(ValueError):
            Entity("", "x")
        with pytest.raises(ValueError):
            Entity("E:1", "")

    def test_defaults(self):
        entity = Entity("E:1", "water")
        assert entity.sub_ontology is SubOntology.CHEMICAL
        assert entity.synonyms == ()


class TestOntologyEntities:
    def test_add_and_lookup(self):
        onto = make_ontology()
        assert onto.entity("E:1").name == "acid"
        assert onto.has_entity("E:2")
        assert not onto.has_entity("E:99")
        assert onto.num_entities == 4

    def test_unknown_entity_raises(self):
        with pytest.raises(KeyError, match="E:99"):
            make_ontology().entity("E:99")

    def test_duplicate_identical_is_noop(self):
        onto = make_ontology()
        onto.add_entity(Entity("E:1", "acid"))
        assert onto.num_entities == 4

    def test_duplicate_conflicting_raises(self):
        onto = make_ontology()
        with pytest.raises(ValueError, match="already registered"):
            onto.add_entity(Entity("E:1", "different name"))

    def test_entities_in_suboontology(self):
        onto = make_ontology()
        roles = onto.entities_in(SubOntology.ROLE)
        assert [e.identifier for e in roles] == ["E:4"]


class TestOntologyStatements:
    def test_add_statement_and_membership(self):
        onto = make_ontology()
        onto.add_statement("E:3", IS_A, "E:2")
        assert onto.has_statement("E:3", IS_A, "E:2")
        assert not onto.has_statement("E:2", IS_A, "E:3")
        assert onto.num_statements == 1

    def test_relation_by_string_name(self):
        onto = make_ontology()
        onto.add_statement("E:3", "has_role", "E:4")
        assert onto.has_statement("E:3", HAS_ROLE, "E:4")

    def test_duplicate_statement_is_deduplicated(self):
        onto = make_ontology()
        onto.add_statement("E:3", IS_A, "E:2")
        onto.add_statement("E:3", IS_A, "E:2")
        assert onto.num_statements == 1

    def test_self_loop_rejected(self):
        onto = make_ontology()
        with pytest.raises(ValueError, match="self-loop"):
            onto.add_statement("E:1", IS_A, "E:1")

    def test_unknown_endpoint_rejected(self):
        onto = make_ontology()
        with pytest.raises(KeyError):
            onto.add_statement("E:1", IS_A, "E:99")

    def test_statements_filtered_by_relation(self):
        onto = make_ontology()
        onto.add_statement("E:3", IS_A, "E:2")
        onto.add_statement("E:3", HAS_ROLE, "E:4")
        assert len(list(onto.statements(IS_A))) == 1
        assert len(list(onto.statements())) == 2

    def test_relation_names_ordered_by_count(self):
        onto = make_ontology()
        onto.add_statement("E:3", IS_A, "E:2")
        onto.add_statement("E:2", IS_A, "E:1")
        onto.add_statement("E:3", HAS_ROLE, "E:4")
        assert onto.relation_names() == ["is_a", "has_role"]


class TestIsANavigation:
    def test_parents_children(self):
        onto = make_ontology()
        onto.add_statement("E:3", IS_A, "E:2")
        onto.add_statement("E:2", IS_A, "E:1")
        assert onto.parents("E:3") == {"E:2"}
        assert onto.children("E:1") == {"E:2"}
        assert onto.parents("E:1") == set()

    def test_roots(self):
        onto = make_ontology()
        onto.add_statement("E:3", IS_A, "E:2")
        roots = set(onto.roots())
        assert "E:2" in roots and "E:3" not in roots

    def test_navigation_unknown_entity_raises(self):
        with pytest.raises(KeyError):
            make_ontology().parents("E:99")


class TestStatement:
    def test_key(self):
        statement = Statement("a", IS_A, "b")
        assert statement.key() == ("a", "is_a", "b")
