"""End-to-end gradient check of the transformer encoder + loss/optim tests."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Linear
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.transformer import TransformerConfig, TransformerEncoder


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(8, 2, seed=1)
        out = attn.forward(np.random.default_rng(0).normal(size=(2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_d_model_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2)

    def test_padding_mask_blocks_keys(self):
        attn = MultiHeadSelfAttention(8, 2, seed=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out_masked = attn.forward(x, mask)
        # Changing a masked position must not change unmasked outputs.
        x2 = x.copy()
        x2[0, 3] += 10.0
        out_changed = attn.forward(x2, mask)
        assert np.allclose(out_masked[0, :2], out_changed[0, :2])


class TestTransformerGradients:
    def test_full_gradient_check(self):
        config = TransformerConfig(
            vocab_size=20, d_model=8, n_heads=2, n_layers=2, d_ff=16,
            max_len=10, dropout=0.0, seed=1,
        )
        encoder = TransformerEncoder(config)
        head = Linear(8, 3, seed=2)
        ids = np.array([[1, 2, 3, 4, 0, 0], [5, 6, 7, 8, 9, 2]])
        mask = np.array([[1, 1, 1, 1, 0, 0], [1, 1, 1, 1, 1, 1]], dtype=float)
        labels = np.array([0, 2])

        def loss_fn():
            final, _ = encoder.forward(ids, mask)
            logits = head.forward(final[:, 0, :])
            return softmax_cross_entropy(logits, labels)[0]

        encoder.zero_grad()
        head.zero_grad()
        final, _ = encoder.forward(ids, mask)
        logits = head.forward(final[:, 0, :])
        _, grad = softmax_cross_entropy(logits, labels)
        grad_cls = head.backward(grad)
        grad_final = np.zeros_like(final)
        grad_final[:, 0, :] = grad_cls
        encoder.backward(grad_final)

        rng = np.random.default_rng(3)
        eps = 1e-5
        for parameter in encoder.parameters() + head.parameters():
            flat = parameter.value.reshape(-1)
            grads = parameter.grad.reshape(-1)
            for _ in range(3):
                i = int(rng.integers(0, flat.size))
                orig = flat[i]
                flat[i] = orig + eps
                plus = loss_fn()
                flat[i] = orig - eps
                minus = loss_fn()
                flat[i] = orig
                numeric = (plus - minus) / (2 * eps)
                denom = max(1e-4, abs(numeric) + abs(grads[i]))
                assert abs(numeric - grads[i]) / denom < 1e-4, parameter.name

    def test_layer_outputs_returned(self):
        config = TransformerConfig(vocab_size=10, d_model=8, n_heads=2,
                                   n_layers=3, d_ff=16, max_len=8, dropout=0.0)
        encoder = TransformerEncoder(config)
        final, layers = encoder.forward(np.array([[1, 2, 3]]))
        assert len(layers) == 3
        assert layers[-1] is final

    def test_sequence_length_guard(self):
        config = TransformerConfig(vocab_size=10, d_model=8, n_heads=2,
                                   n_layers=1, d_ff=16, max_len=4)
        encoder = TransformerEncoder(config)
        with pytest.raises(ValueError, match="max_len"):
            encoder.forward(np.zeros((1, 6), dtype=int))


class TestSoftmaxCrossEntropy:
    def test_uniform_logits(self):
        logits = np.zeros((2, 4))
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(np.log(4))
        assert grad.shape == logits.shape

    def test_ignore_index(self):
        logits = np.random.default_rng(0).normal(size=(3, 4))
        labels = np.array([0, -100, 2])
        loss, grad = softmax_cross_entropy(logits, labels, ignore_index=-100)
        assert np.allclose(grad[1], 0.0)
        assert loss > 0

    def test_all_ignored(self):
        logits = np.ones((2, 3))
        loss, grad = softmax_cross_entropy(
            logits, np.array([-100, -100]), ignore_index=-100
        )
        assert loss == 0.0
        assert np.all(grad == 0)

    def test_gradient_sums_to_zero_per_row(self):
        logits = np.random.default_rng(0).normal(size=(4, 5))
        _, grad = softmax_cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestOptim:
    def test_sgd_descends_quadratic(self):
        from repro.nn.layers import Parameter

        parameter = Parameter(np.array([5.0]))
        opt = SGD([parameter], lr=0.1)
        for _ in range(100):
            parameter.zero_grad()
            parameter.grad += 2 * parameter.value  # d/dx x^2
            opt.step()
        assert abs(parameter.value[0]) < 1e-4

    def test_adam_descends_quadratic(self):
        from repro.nn.layers import Parameter

        parameter = Parameter(np.array([5.0]))
        opt = Adam([parameter], lr=0.3)
        for _ in range(200):
            parameter.zero_grad()
            parameter.grad += 2 * parameter.value
            opt.step()
        assert abs(parameter.value[0]) < 1e-3

    def test_momentum(self):
        from repro.nn.layers import Parameter

        parameter = Parameter(np.array([1.0]))
        opt = SGD([parameter], lr=0.1, momentum=0.9)
        parameter.grad += 1.0
        opt.step()
        first = parameter.value.copy()
        parameter.zero_grad()
        parameter.grad += 0.0
        opt.step()  # momentum keeps moving
        assert parameter.value[0] < first[0]

    def test_clip_gradients(self):
        from repro.nn.layers import Parameter

        parameter = Parameter(np.zeros(4))
        parameter.grad += 10.0
        norm = clip_gradients([parameter], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_noop_under_norm(self):
        from repro.nn.layers import Parameter

        parameter = Parameter(np.zeros(4))
        parameter.grad += 0.1
        clip_gradients([parameter], max_norm=10.0)
        assert np.allclose(parameter.grad, 0.1)
