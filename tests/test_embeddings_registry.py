"""Tests for the six-model embedding registry and contextual embeddings."""

import numpy as np
import pytest

from repro.embeddings.base import EmbeddingModel
from repro.embeddings.contextual import ContextualEmbeddings
from repro.embeddings.registry import (
    MODEL_NAMES,
    STATIC_MODEL_NAMES,
    RegistryConfig,
    build_embedding_models,
)


@pytest.fixture(scope="module")
def corpora():
    chem = [["acid", "hydroxy", "metabolite", "role"]] * 40
    generic = [["people", "time", "government", "acid"]] * 40
    biomedical = [["protein", "acid", "metabolite", "cell"]] * 40
    return chem, generic, biomedical


class TestRegistry:
    def test_static_lineup_without_bert(self, corpora):
        chem, generic, biomedical = corpora
        models = build_embedding_models(
            chem, generic, biomedical, bert=None,
            config=RegistryConfig(dim=8, epochs=1, glove_epochs=2, min_count=1),
        )
        assert set(models) == set(STATIC_MODEL_NAMES)
        for name, model in models.items():
            assert isinstance(model, EmbeddingModel)
            assert model.dim == 8
            assert model.name == name

    def test_full_lineup_with_bert(self, lab):
        assert set(lab.embeddings) == set(MODEL_NAMES)
        assert lab.embedding("PubmedBERT").phrase_level is True

    def test_glove_chem_vocabulary_joins_generic(self, corpora):
        chem, generic, biomedical = corpora
        models = build_embedding_models(
            chem, generic, biomedical, bert=None,
            config=RegistryConfig(dim=8, epochs=1, glove_epochs=2, min_count=1),
        )
        # 'government' only occurs in the generic corpus but must be in the
        # joined GloVe-Chem vocabulary (the paper's construction).
        assert models["GloVe-Chem"].contains("government")
        assert not models["W2V-Chem"].contains("government")


class TestContextualEmbeddings:
    def test_vector_shape_and_cache(self, lab):
        model = lab.embedding("PubmedBERT")
        a = model.vector("3-hydroxybutanoic acid")
        b = model.vector("3-hydroxybutanoic acid")
        assert a.shape == (model.dim,)
        assert np.allclose(a, b)

    def test_hyphenated_names_are_not_unk_collapsed(self, lab):
        """Two different hyphenated names must embed differently (the
        whitespace-splitting bug would map both to [UNK])."""
        model = lab.embedding("PubmedBERT")
        a = model.vector("3-hydroxy-porphyrin")
        b = model.vector("12-chloro-flavonoid")
        assert not np.allclose(a, b)

    def test_empty_phrase_falls_back(self, lab):
        model = lab.embedding("PubmedBERT")
        vector = model.vector("---")
        assert vector.shape == (model.dim,)

    def test_open_vocabulary(self, lab):
        model = lab.embedding("PubmedBERT")
        assert model.contains("anything at all")
        assert model.vocabulary is None

    def test_wraps_model(self, lab):
        model = lab.embedding("PubmedBERT")
        assert isinstance(model, ContextualEmbeddings)
        assert model.model is lab.bert
