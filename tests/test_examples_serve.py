"""Smoke test: the serving quickstart example runs, fast.

The example is documentation that executes; this test keeps it honest —
it must complete a real train → serve → classify → shutdown loop well
under the 30 s budget the README promises.
"""

import pathlib
import subprocess
import sys
import time

EXAMPLE = pathlib.Path(__file__).resolve().parent.parent / "examples" / "serve_quickstart.py"
SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


class TestServeQuickstart:
    def test_runs_cleanly_under_30s(self):
        started = time.perf_counter()
        completed = subprocess.run(
            [sys.executable, str(EXAMPLE)],
            capture_output=True,
            text=True,
            timeout=30,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        elapsed = time.perf_counter() - started
        assert completed.returncode == 0, completed.stderr
        assert elapsed < 30, f"quickstart took {elapsed:.1f}s"
        assert "labels (1 = plausible):" in completed.stdout
        assert "server stopped cleanly" in completed.stdout
