"""Tests for the perf-area registry (repro.perf.areas)."""

import pytest

from repro.perf.areas import AREAS, area_names, get_area, select_areas
from repro.perf.harness import PerfError, Protocol

EXPECTED_AREAS = (
    "obo_parse",
    "wordpiece",
    "glove_cooccur",
    "word2vec_neg",
    "bert_pretrain_step",
    "rf_fit",
    "icl_delivery",
    "store_roundtrip",
)


class TestRegistry:
    def test_the_eight_areas_are_registered(self):
        assert area_names() == list(EXPECTED_AREAS)
        assert len(AREAS) == 8

    def test_every_area_has_a_title(self):
        assert all(area.title for area in AREAS)

    def test_get_area_by_name(self):
        assert get_area("obo_parse").name == "obo_parse"

    def test_get_area_unknown_raises(self):
        with pytest.raises(PerfError, match="unknown perf area"):
            get_area("quantum_flux")

    def test_select_defaults_to_all(self):
        assert [a.name for a in select_areas()] == list(EXPECTED_AREAS)

    def test_select_preserves_registry_order(self):
        picked = select_areas(["store_roundtrip", "obo_parse"])
        assert [a.name for a in picked] == ["obo_parse", "store_roundtrip"]

    def test_select_unknown_raises(self):
        with pytest.raises(PerfError):
            select_areas(["obo_parse", "nope"])


class TestWorkloads:
    # Exercising every area here would re-run the whole benchmark suite on
    # each pytest invocation; the cheapest two prove the wiring (the full
    # sweep runs in CI's perf job and in `repro perf update`).

    @pytest.mark.parametrize("name", ["obo_parse", "store_roundtrip"])
    def test_area_measures_deterministically(self, name):
        benchmark, workload = get_area(name).build()
        first = benchmark.measure(Protocol(warmup=0, repeats=2))
        assert first.deterministic is True
        assert first.stats.n == 2
        assert isinstance(workload, dict) and workload
        # a fresh build of the same area reproduces the checksum
        rebuilt, _ = get_area(name).build()
        second = rebuilt.measure(Protocol(warmup=0, repeats=1))
        assert second.checksum == first.checksum
