"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import derive_rng, ensure_rng, stable_hash


class TestStableHash:
    def test_same_inputs_same_hash(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_fits_in_63_bits(self):
        value = stable_hash("anything")
        assert 0 <= value < 2**63

    def test_no_separator_collision(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    @given(st.lists(st.text(max_size=20), min_size=1, max_size=4))
    def test_deterministic_for_arbitrary_parts(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestEnsureRng:
    def test_none_gives_fixed_generator(self):
        a = ensure_rng(None).random(3)
        b = ensure_rng(None).random(3)
        assert np.allclose(a, b)

    def test_int_seed(self):
        assert np.allclose(ensure_rng(5).random(3), ensure_rng(5).random(3))
        assert not np.allclose(ensure_rng(5).random(3), ensure_rng(6).random(3))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen


class TestDeriveRng:
    def test_label_separation(self):
        a = derive_rng(0, "alpha").random(4)
        b = derive_rng(0, "beta").random(4)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        assert np.allclose(
            derive_rng(7, "x", 1).random(4), derive_rng(7, "x", 1).random(4)
        )

    def test_seed_separation(self):
        assert not np.allclose(
            derive_rng(1, "x").random(4), derive_rng(2, "x").random(4)
        )
