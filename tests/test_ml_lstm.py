"""Tests for the numpy LSTM classifier."""

import numpy as np
import pytest

from repro.ml.lstm import LSTMClassifier, LSTMConfig, _pad_batch


def sequence_task(n=200, seed=0):
    """Label = whether the sequence mean of feature 0 is positive."""
    rng = np.random.default_rng(seed)
    sequences, labels = [], []
    for _ in range(n):
        length = int(rng.integers(3, 9))
        offset = 1.0 if rng.random() < 0.5 else -1.0
        seq = rng.normal(0, 0.3, size=(length, 4))
        seq[:, 0] += offset
        sequences.append(seq)
        labels.append(int(offset > 0))
    return sequences, labels


class TestPadBatch:
    def test_shapes_and_mask(self):
        seqs = [np.ones((2, 3)), np.ones((4, 3))]
        x, mask = _pad_batch(seqs)
        assert x.shape == (2, 4, 3)
        assert mask.tolist() == [[1, 1, 0, 0], [1, 1, 1, 1]]
        assert np.all(x[0, 2:] == 0)


class TestLSTMClassifier:
    def test_learns_sequence_task(self):
        sequences, labels = sequence_task(300)
        test_sequences, test_labels = sequence_task(80, seed=1)
        model = LSTMClassifier(4, LSTMConfig(hidden_size=12, epochs=6, seed=0))
        model.fit(sequences, labels)
        accuracy = (model.predict(test_sequences) == np.array(test_labels)).mean()
        assert accuracy > 0.9

    def test_padding_invariance(self):
        """The final hidden state must not depend on batch padding."""
        sequences, labels = sequence_task(60)
        model = LSTMClassifier(4, LSTMConfig(hidden_size=8, epochs=2, seed=0))
        model.fit(sequences, labels)
        short = sequences[0]
        alone = model.predict_proba([short])[0]
        with_long = model.predict_proba([short, np.zeros((30, 4))])[0]
        assert alone == pytest.approx(with_long, abs=1e-10)

    def test_loss_decreases(self):
        sequences, labels = sequence_task(150)
        model = LSTMClassifier(4, LSTMConfig(hidden_size=8, epochs=4, seed=0))
        model.fit(sequences, labels)
        losses = [h["train_loss"] for h in model.history]
        assert losses[-1] < losses[0]

    def test_validation_tracking(self):
        sequences, labels = sequence_task(60)
        model = LSTMClassifier(4, LSTMConfig(epochs=2, seed=0))
        model.fit(sequences, labels, validation=(sequences[:20], labels[:20]))
        assert "validation_accuracy" in model.history[-1]

    def test_input_validation(self):
        model = LSTMClassifier(4)
        with pytest.raises(ValueError):
            model.fit([], [])
        with pytest.raises(ValueError):
            model.fit([np.ones((3, 2))], [1])  # wrong dim
        with pytest.raises(ValueError):
            model.fit([np.ones((3, 4))], [1, 0])  # length mismatch
        with pytest.raises(ValueError):
            model.predict_proba([])

    def test_deterministic(self):
        sequences, labels = sequence_task(50)
        a = LSTMClassifier(4, LSTMConfig(epochs=2, seed=3)).fit(sequences, labels)
        b = LSTMClassifier(4, LSTMConfig(epochs=2, seed=3)).fit(sequences, labels)
        assert np.allclose(
            a.predict_proba(sequences), b.predict_proba(sequences)
        )

    def test_gradient_check_tiny(self):
        """BPTT gradients against central differences on a tiny model."""
        model = LSTMClassifier(3, LSTMConfig(hidden_size=4, seed=0))
        rng = np.random.default_rng(0)
        sequences = [rng.normal(size=(3, 3)), rng.normal(size=(5, 3))]
        labels = np.array([0, 1])
        x, mask = _pad_batch(sequences)

        from repro.nn.losses import softmax_cross_entropy

        def loss_fn():
            h, _ = model._forward(x, mask)
            logits = h @ model.w_out.value + model.b_out.value
            return softmax_cross_entropy(logits, labels)[0]

        for parameter in model.parameters():
            parameter.zero_grad()
        h, caches = model._forward(x, mask)
        logits = h @ model.w_out.value + model.b_out.value
        _, grad_logits = softmax_cross_entropy(logits, labels)
        model.w_out.grad += h.T @ grad_logits
        model.b_out.grad += grad_logits.sum(axis=0)
        model._backward(caches, grad_logits @ model.w_out.value.T)

        eps = 1e-6
        check_rng = np.random.default_rng(1)
        for parameter in model.parameters():
            flat = parameter.value.reshape(-1)
            grads = parameter.grad.reshape(-1)
            for _ in range(4):
                i = int(check_rng.integers(0, flat.size))
                orig = flat[i]
                flat[i] = orig + eps
                plus = loss_fn()
                flat[i] = orig - eps
                minus = loss_fn()
                flat[i] = orig
                numeric = (plus - minus) / (2 * eps)
                denom = max(1e-4, abs(numeric) + abs(grads[i]))
                assert abs(numeric - grads[i]) / denom < 1e-4, parameter.name
