"""Cross-module property-based tests on core invariants."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.triples import LabeledTriple
from repro.llm.prompts import PromptVariant, extract_query_text, render_prompt
from repro.ontology.model import Entity, Ontology
from repro.ontology.obo import dumps_obo, load_obo
from repro.ontology.queries import is_dag
from repro.ontology.relations import IS_A
from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like
from repro.ml.tree import DecisionTree, DecisionTreeConfig

# Entity names: printable, no newlines, non-empty after strip.
name_strategy = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -(),'"
    ),
    min_size=1,
    max_size=40,
).map(str.strip).filter(bool)


def make_triple(subject_name, object_name):
    return LabeledTriple("s", subject_name, IS_A, "o", object_name, 1)


class TestPromptRoundTrip:
    @settings(deadline=None, max_examples=60)
    @given(name_strategy, name_strategy, st.sampled_from(list(PromptVariant)))
    def test_query_extractable_from_any_prompt(self, subject, obj, variant):
        examples_pos = [make_triple(f"pos {i}", f"class {i}") for i in range(3)]
        examples_neg = [
            LabeledTriple(f"n{i}", f"neg {i}", IS_A, f"no{i}", f"nclass {i}", 0)
            for i in range(3)
        ]
        query = make_triple(subject, obj)
        prompt = render_prompt(examples_pos, examples_neg, query, variant, seed=1)
        assert extract_query_text(prompt) == query.as_text()


class TestSynthesisInvariants:
    @settings(deadline=None, max_examples=6)
    @given(st.integers(0, 10_000), st.integers(80, 250))
    def test_generator_invariants(self, seed, n_entities):
        ontology = synthesize_chebi_like(
            SynthesisConfig(n_chemical_entities=n_entities, seed=seed)
        )
        # names unique
        names = [e.name for e in ontology.entities()]
        assert len(names) == len(set(names))
        # is_a hierarchy acyclic
        assert is_dag(ontology)
        # every statement references registered entities, no self-loops
        for statement in ontology.statements():
            assert ontology.has_entity(statement.subject)
            assert ontology.has_entity(statement.object)
            assert statement.subject != statement.object


class TestOboRoundTripProperty:
    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.tuples(name_strategy, st.text(max_size=30)),
            min_size=1,
            max_size=8,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_arbitrary_entities_round_trip(self, entities):
        ontology = Ontology("prop")
        for index, (name, definition) in enumerate(entities):
            ontology.add_entity(
                Entity(f"E:{index}", name, definition=definition.replace("\n", " "))
            )
        for index in range(1, len(entities)):
            ontology.add_statement(f"E:{index}", IS_A, "E:0")
        reloaded = load_obo(io.StringIO(dumps_obo(ontology)))
        assert reloaded.num_entities == ontology.num_entities
        assert reloaded.num_statements == ontology.num_statements
        for entity in ontology.entities():
            assert reloaded.entity(entity.identifier).name == entity.name


class TestTreeInvariants:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 100_000))
    def test_predict_consistent_with_proba(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, size=40)
        if y.min() == y.max():
            return
        tree = DecisionTree(DecisionTreeConfig(seed=seed)).fit(x, y)
        probs = tree.predict_proba(x)
        assert np.array_equal(tree.predict(x), (probs >= 0.5).astype(np.int64))

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 100_000))
    def test_training_accuracy_at_least_majority(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(60, 4))
        y = rng.integers(0, 2, size=60)
        if y.min() == y.max():
            return
        tree = DecisionTree(
            DecisionTreeConfig(max_features=None, seed=seed)
        ).fit(x, y)
        accuracy = (tree.predict(x) == y).mean()
        majority = max(y.mean(), 1 - y.mean())
        assert accuracy >= majority - 1e-12
