"""The serve bench harness: a real (small) run, its payload, and the
baseline round-trip the CI job depends on."""

import json

import pytest

from repro.core import Lab
from repro.perf import (
    Protocol,
    compare_exit_code,
    compare_result,
    load_baseline,
    parse_tolerance,
    write_baseline,
)
from repro.serve.bench import (
    SERVE_AREA,
    ServeWorkload,
    bench_lab_config,
    measure_serve,
    serve_payload,
)

SMALL = ServeWorkload(clients=12, requests=2, batch=3, backend="rf")


@pytest.fixture(scope="module")
def bench_outcome():
    """One real bench run shared by the schema/baseline assertions."""
    lab = Lab(bench_lab_config(SMALL.entities, SMALL.seed))
    result, serving = measure_serve(
        SMALL, protocol=Protocol(warmup=1, repeats=2), lab=lab
    )
    return result, serving, serve_payload(result, SMALL, serving)


class TestWorkload:
    def test_to_dict_round_trips_through_json(self):
        document = json.loads(json.dumps(SMALL.to_dict(), sort_keys=True))
        assert document["clients"] == 12
        assert document["backend"] == "rf"
        assert document["max_wait_ms"] == 2.0

    def test_defaults_meet_the_acceptance_floor(self):
        assert ServeWorkload().clients >= 200


class TestMeasureServe:
    def test_run_is_deterministic_and_lossless(self, bench_outcome):
        result, serving, _ = bench_outcome
        assert result.deterministic, "label histogram drifted across waves"
        assert serving["failures"] == 0
        assert serving["requests"] == SMALL.clients * SMALL.requests * 3

    def test_serving_section_has_the_headline_numbers(self, bench_outcome):
        _, serving, _ = bench_outcome
        assert serving["clients"] == 12
        assert serving["requests_per_wave"] == 24
        assert serving["waves"] == 3
        assert 0.0 <= serving["shed_rate"] <= 1.0
        assert serving["latency_p50_ms"] > 0
        assert serving["latency_p99_ms"] >= serving["latency_p50_ms"]
        assert serving["throughput_rps"] > 0

    def test_payload_is_schema_versioned(self, bench_outcome):
        _, _, payload = bench_outcome
        assert payload["format"] == "repro-bench-v1"
        assert payload["area"] == SERVE_AREA
        assert payload["name"] == "serve-rf"
        assert payload["workload"]["backend"] == "rf"
        assert payload["deterministic"] is True
        assert "environment" in payload
        assert set(payload["serving"]) >= {
            "latency_p50_ms",
            "latency_p99_ms",
            "throughput_rps",
            "shed_rate",
        }
        # The CI artifact is canonical JSON: it must survive a round trip.
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload


class TestBaselineRoundTrip:
    def test_write_load_compare(self, bench_outcome, tmp_path):
        _, _, payload = bench_outcome
        path = write_baseline(payload, tmp_path)
        assert path.name == f"BENCH_{SERVE_AREA}.json"
        baseline = load_baseline(SERVE_AREA, tmp_path)
        comparison = compare_result(
            payload, baseline, tolerance=parse_tolerance("25%")
        )
        assert comparison.status in ("ok", "faster")
        assert compare_exit_code([comparison]) == 0

    def test_regression_detected_against_tampered_baseline(
        self, bench_outcome, tmp_path
    ):
        _, _, payload = bench_outcome
        slow = json.loads(json.dumps(payload))
        slow["stats"]["median_s"] = payload["stats"]["median_s"] / 10.0
        write_baseline(slow, tmp_path)
        comparison = compare_result(
            payload, load_baseline(SERVE_AREA, tmp_path),
            tolerance=parse_tolerance("25%"),
        )
        assert comparison.status == "regression"
        assert compare_exit_code([comparison]) == 1


class TestRetryAccounting:
    """503 retries honour Retry-After through the injected clock and are
    counted in the payload (outside the determinism checksum)."""

    def test_serving_section_reports_retries(self, bench_outcome):
        _, serving, payload = bench_outcome
        assert "retries" in serving
        assert serving["retries"] >= 0
        assert payload["serving"]["retries"] == serving["retries"]

    def test_run_request_counts_retries_and_sleeps_on_the_clock(self):
        from repro.resilience.faults import FaultClock
        from repro.serve.bench import _ClientOutcome, _run_request

        responses = []

        class FakeResponse:
            def __init__(self, status, payload, headers=None):
                self.status = status
                self._payload = payload
                self._headers = headers or {}

            def read(self):
                return json.dumps(self._payload).encode("utf-8")

            def getheader(self, name):
                return self._headers.get(name)

        class FakeConnection:
            def request(self, *args, **kwargs):
                pass

            def getresponse(self):
                return responses.pop(0)

        responses.extend(
            [
                FakeResponse(
                    503, {"error": "shed"}, headers={"Retry-After": "0.05"}
                ),
                FakeResponse(
                    503, {"error": "shed", "retry_after_s": 0.02}, headers={}
                ),
                FakeResponse(200, {"labels": [1, None]}),
            ]
        )
        clock = FaultClock()
        outcome = _ClientOutcome()
        _run_request(SMALL, FakeConnection(), [], outcome, clock)
        assert outcome.retries == 2
        assert outcome.sheds == 2
        assert outcome.failures == 0
        assert outcome.labels == [1, None]
        # Both waits went through the injected clock, honouring Retry-After.
        assert clock.sleeps == [pytest.approx(0.05), pytest.approx(0.02)]

    def test_retries_cap_out_as_a_failure(self):
        from repro.resilience.faults import FaultClock
        from repro.serve.bench import MAX_RETRIES, _ClientOutcome, _run_request

        class Always503Connection:
            class _Response:
                status = 503

                def read(self):
                    return b'{"error": "shed"}'

                def getheader(self, name):
                    return "0.01"

            def request(self, *args, **kwargs):
                pass

            def getresponse(self):
                return self._Response()

        clock = FaultClock()
        outcome = _ClientOutcome()
        _run_request(SMALL, Always503Connection(), [], outcome, clock)
        assert outcome.failures == 1
        assert outcome.retries == MAX_RETRIES
        assert len(clock.sleeps) == MAX_RETRIES
