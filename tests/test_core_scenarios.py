"""Tests for the five data-availability scenarios."""

import pytest

from repro.core.scenarios import SCENARIOS, Scenario, build_scenario_split


class TestScenario:
    def test_five_paper_scenarios(self):
        assert len(SCENARIOS) == 5
        assert [s.train_test_ratio for s in SCENARIOS] == [9.0, 7.0, 4.0, 1.0, 0.5]
        assert [s.positive_per_negative for s in SCENARIOS] == [
            1.0,
            0.75,
            0.5,
            0.25,
            0.125,
        ]

    def test_positive_fraction(self):
        assert SCENARIOS[0].positive_fraction == pytest.approx(0.5)
        assert SCENARIOS[4].positive_fraction == pytest.approx(1 / 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("bad", -1.0, 0.5)
        with pytest.raises(ValueError):
            Scenario("bad", 1.0, 1.5)

    def test_describe(self):
        assert "9" in SCENARIOS[0].describe()


class TestBuildScenarioSplit:
    def test_test_set_constant_across_scenarios(self, task1_dataset):
        splits = [
            build_scenario_split(task1_dataset, s, subset_fraction=0.5, seed=1)
            for s in SCENARIOS
        ]
        reference = sorted(t.key() for t in splits[0].test)
        for split in splits[1:]:
            assert sorted(t.key() for t in split.test) == reference

    def test_train_sizes_decrease(self, task1_dataset):
        sizes = [
            len(build_scenario_split(task1_dataset, s, subset_fraction=0.5, seed=1).train)
            for s in SCENARIOS
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_imbalance_applied(self, task1_dataset):
        split = build_scenario_split(
            task1_dataset, SCENARIOS[4], subset_fraction=0.5, seed=1
        )
        n_pos, n_neg = split.train.counts()
        assert n_pos < n_neg
        assert n_pos / max(1, n_neg) == pytest.approx(0.125, rel=0.35)

    def test_train_test_disjoint(self, task1_dataset):
        split = build_scenario_split(
            task1_dataset, SCENARIOS[2], subset_fraction=0.5, seed=1
        )
        train_keys = {t.key() for t in split.train}
        test_keys = {t.key() for t in split.test}
        assert not train_keys & test_keys

    def test_invalid_subset_fraction(self, task1_dataset):
        with pytest.raises(ValueError):
            build_scenario_split(task1_dataset, SCENARIOS[0], subset_fraction=0.0)

    def test_full_subset_allowed(self, task1_dataset):
        split = build_scenario_split(
            task1_dataset, SCENARIOS[0], subset_fraction=1.0, seed=1
        )
        assert len(split.train) > len(split.test)
