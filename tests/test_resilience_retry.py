"""Tests for repro.resilience.retry: RetryPolicy and CircuitBreaker."""

import pytest

from repro.llm.client import ChatClientError
from repro.resilience.faults import FaultClock
from repro.resilience.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryError,
    RetryPolicy,
    is_retryable,
)


class FlakyFn:
    """Fails ``n_failures`` times with ``error_factory()``, then succeeds."""

    def __init__(self, n_failures, error_factory=TimeoutError):
        self.n_failures = n_failures
        self.error_factory = error_factory
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.error_factory()
        return "ok"


class TestClassification:
    def test_os_errors_retryable(self):
        assert is_retryable(TimeoutError())
        assert is_retryable(ConnectionResetError())
        assert is_retryable(OSError("reset"))

    def test_programming_errors_not_retryable(self):
        assert not is_retryable(ValueError("bad"))
        assert not is_retryable(KeyError("x"))

    def test_explicit_flag_wins(self):
        assert is_retryable(ChatClientError("x", retryable=True))
        assert not is_retryable(ChatClientError("x", retryable=False))
        # A retryable=False flag beats the OSError instance check.
        err = ConnectionError("x")
        err.retryable = False
        assert not is_retryable(err)

    def test_circuit_open_not_retryable(self):
        assert not is_retryable(CircuitOpenError("open"))


class TestRetryPolicyDelay:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                             jitter=0.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 4.0
        assert policy.delay(3) == 5.0  # capped

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25, seed=7)
        for attempt in range(6):
            d = policy.delay(attempt, key="k")
            base = min(policy.max_delay, policy.base_delay * 2.0**attempt)
            assert base * 0.75 <= d <= base * 1.25
            assert d == policy.delay(attempt, key="k")  # deterministic

    def test_jitter_varies_with_key_and_seed(self):
        a = RetryPolicy(jitter=0.3, seed=1)
        b = RetryPolicy(jitter=0.3, seed=2)
        assert a.delay(0, key="x") != b.delay(0, key="x")
        assert a.delay(0, key="x") != a.delay(0, key="y")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=10.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestRetryPolicyCall:
    def policy(self, **kwargs):
        kwargs.setdefault("clock", FaultClock())
        kwargs.setdefault("base_delay", 0.01)
        return RetryPolicy(**kwargs)

    def test_success_first_try(self):
        fn = FlakyFn(0)
        assert self.policy().call(fn) == "ok"
        assert fn.calls == 1

    def test_retries_transient_then_succeeds(self):
        clock = FaultClock()
        fn = FlakyFn(3)
        assert self.policy(clock=clock).call(fn) == "ok"
        assert fn.calls == 4
        assert len(clock.sleeps) == 3  # one backoff per failure

    def test_exhaustion_raises_retry_error(self):
        fn = FlakyFn(10)
        with pytest.raises(RetryError) as exc:
            self.policy(max_attempts=4).call(fn)
        assert fn.calls == 4
        assert exc.value.attempts == 4
        assert isinstance(exc.value.last_error, TimeoutError)

    def test_non_retryable_propagates_immediately(self):
        fn = FlakyFn(10, error_factory=lambda: ValueError("bug"))
        with pytest.raises(ValueError):
            self.policy().call(fn)
        assert fn.calls == 1

    def test_custom_classifier(self):
        fn = FlakyFn(10, error_factory=lambda: ValueError("transient"))
        with pytest.raises(RetryError):
            self.policy(max_attempts=3).call(
                fn, classify=lambda e: isinstance(e, ValueError)
            )
        assert fn.calls == 3

    def test_backoff_schedule_matches_delay(self):
        clock = FaultClock()
        policy = self.policy(clock=clock, max_attempts=4, jitter=0.1, seed=3)
        with pytest.raises(RetryError):
            policy.call(FlakyFn(10))
        assert clock.sleeps == [policy.delay(0), policy.delay(1), policy.delay(2)]


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_probe_closes_on_success(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        clock.advance(5.0)
        breaker.before_call()  # half-open: allowed through
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.before_call()
        breaker.record_failure()  # one failure while half-open: re-open
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_call_wrapper(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0,
                                 clock=clock)
        fn = FlakyFn(2)
        for _ in range(2):
            with pytest.raises(TimeoutError):
                breaker.call(fn)
        with pytest.raises(CircuitOpenError):
            breaker.call(fn)
        assert fn.calls == 2  # third call never reached the function
        clock.advance(1.0)
        assert breaker.call(fn) == "ok"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FaultClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)


class TestRetryWithBreaker:
    def test_breaker_open_stops_retry_loop(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=100.0,
                                 clock=clock)
        fn = FlakyFn(10)
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, clock=clock)
        with pytest.raises(CircuitOpenError):
            policy.call(fn, breaker=breaker)
        # Two attempts tripped the breaker; the loop stopped without
        # burning the remaining attempts against an open circuit.
        assert fn.calls == 2

    def test_breaker_records_success(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, clock=clock)
        assert policy.call(FlakyFn(2), breaker=breaker) == "ok"
        assert breaker.state == CircuitBreaker.CLOSED
