"""Tests for the metric primitives (repro.obs.metrics)."""

import threading
import time

from repro.obs.metrics import (
    Counter,
    Gauge,
    Timer,
    memory_metrics,
    peak_rss_bytes,
    peak_rss_mb,
    tracemalloc_delta,
)


class TestCounter:
    def test_incr_and_value(self):
        counter = Counter("n")
        assert counter.incr() == 1
        assert counter.incr(4) == 5
        assert counter.value == 5

    def test_reset(self):
        counter = Counter()
        counter.incr(3)
        counter.reset()
        assert counter.value == 0

    def test_thread_safe_increments(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.incr()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g", 1.0)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer("t")
        for _ in range(3):
            with timer:
                time.sleep(0.001)
        assert timer.count == 3
        assert timer.total >= 0.003
        assert timer.last > 0
        assert abs(timer.mean - timer.total / 3) < 1e-12

    def test_rate(self):
        timer = Timer()
        with timer:
            time.sleep(0.005)
        assert timer.rate(100) > 0
        assert Timer().rate(10) == 0.0  # no elapsed time yet

    def test_mean_of_unused_timer(self):
        assert Timer().mean == 0.0


class TestMemory:
    def test_peak_rss_positive(self):
        peak = peak_rss_bytes()
        assert peak is not None and peak > 1024 * 1024  # > 1 MiB, surely

    def test_peak_rss_mb_consistent(self):
        in_bytes, in_mb = peak_rss_bytes(), peak_rss_mb()
        assert abs(in_mb - in_bytes / 1048576.0) < 1e-9

    def test_memory_metrics_keys(self):
        metrics = memory_metrics()
        assert set(metrics) == {"peak_rss_bytes", "peak_rss_mb", "tracemalloc"}

    def test_memory_metrics_tracemalloc_section(self):
        section = memory_metrics()["tracemalloc"]
        assert set(section) == {
            "available", "tracing", "current_bytes", "peak_bytes",
        }
        assert section["available"] is True

    def test_tracemalloc_metrics_fallback_when_not_tracing(self):
        import tracemalloc as tm

        from repro.obs.metrics import tracemalloc_metrics

        was_tracing = tm.is_tracing()
        if was_tracing:
            tm.stop()
        try:
            section = tracemalloc_metrics()
            assert section["available"] is True
            assert section["tracing"] is False
            assert section["current_bytes"] is None
            assert section["peak_bytes"] is None
        finally:
            if was_tracing:
                tm.start()

    def test_tracemalloc_metrics_reports_while_tracing(self):
        import tracemalloc as tm

        from repro.obs.metrics import tracemalloc_metrics

        was_tracing = tm.is_tracing()
        if not was_tracing:
            tm.start()
        try:
            keep = bytearray(256 * 1024)
            section = tracemalloc_metrics()
            assert section["tracing"] is True
            assert section["current_bytes"] is not None
            assert section["peak_bytes"] >= section["current_bytes"] > 0
            assert keep is not None
        finally:
            if not was_tracing:
                tm.stop()

    def test_tracemalloc_delta_sees_allocation(self):
        keep = None
        with tracemalloc_delta() as delta:
            keep = bytearray(512 * 1024)
        assert delta.available
        assert delta.delta_bytes is not None and delta.delta_bytes > 400_000
        assert delta.peak_bytes is not None and delta.peak_bytes > 400_000
        assert keep is not None

    def test_tracemalloc_delta_near_zero_for_empty_block(self):
        with tracemalloc_delta() as delta:
            pass
        assert delta.delta_bytes is not None
        assert abs(delta.delta_bytes) < 100_000
