"""Artifact-store tests: round-trip identity, hits, locking, maintenance."""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.experiment import Lab, LabConfig
from repro.obs.manifest import build_manifest, clear_context
from repro.pipeline.stage import Stage
from repro.pipeline.store import (
    ARTIFACTS_ENV_VAR,
    ArtifactStore,
    ArtifactStoreError,
)
from tests.conftest import MICRO_LAB_CONFIG

import dataclasses


def _micro_config(artifact_dir=None, **overrides):
    return dataclasses.replace(
        MICRO_LAB_CONFIG, artifact_dir=artifact_dir, **overrides
    )


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store populated by one micro Lab, plus that (cold) Lab."""
    root = tmp_path_factory.mktemp("artifacts")
    lab = Lab(LabConfig(**dataclasses.asdict(_micro_config(str(root)))))
    lab.warm(jobs=1)
    return root, lab


class TestFromConfig:
    def test_prefers_config_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ARTIFACTS_ENV_VAR, str(tmp_path / "env"))
        store = ArtifactStore.from_config(
            LabConfig(artifact_dir=str(tmp_path / "cfg"))
        )
        assert store.root == tmp_path / "cfg"

    def test_falls_back_to_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ARTIFACTS_ENV_VAR, str(tmp_path / "env"))
        store = ArtifactStore.from_config(LabConfig())
        assert store.root == tmp_path / "env"

    def test_disabled_without_either(self, monkeypatch):
        monkeypatch.delenv(ARTIFACTS_ENV_VAR, raising=False)
        assert ArtifactStore.from_config(LabConfig()) is None


class TestWarmRunLoadsEverything:
    def test_fresh_lab_hits_for_all_persistable_stages(self, warm_store):
        root, cold_lab = warm_store
        clear_context()
        warm_lab = Lab(_micro_config(str(root)))
        warm_lab.embeddings
        warm_lab.ml_split(1)
        warm_lab.ft_split(1)
        warm_lab.adaptation_filter("task-oriented", "W2V-Chem")
        stages = build_manifest()["context"]["stages"]
        persistable = {
            name
            for name, status in stages.items()
            if warm_lab.graph.stage(name).persistable
        }
        assert "ontology" in persistable
        assert "bert" in persistable
        assert "embedding-GloVe-Chem" in persistable
        misses = {
            name for name in persistable if stages[name]["status"] != "hit"
        }
        assert not misses, f"substrates rebuilt on warm run: {misses}"

    def test_round_trip_is_byte_identical(self, warm_store):
        root, cold_lab = warm_store
        warm_lab = Lab(_micro_config(str(root)))
        # embeddings: tables, vocabulary order and OOV draws all match
        for name in ("GloVe", "W2V-Chem", "GloVe-Chem", "BioWordVec"):
            fresh = cold_lab.embedding(name)
            loaded = warm_lab.embedding(name)
            fresh_table = fresh.table if name == "BioWordVec" else fresh.matrix
            loaded_table = loaded.table if name == "BioWordVec" else loaded.matrix
            assert np.array_equal(fresh_table, loaded_table), name
            for token in ("acid", "zz-never-seen-token"):
                assert np.array_equal(
                    fresh.vector(token), loaded.vector(token)
                ), (name, token)
        # datasets and splits: same triples in the same order, same names
        assert cold_lab.dataset(1).name == warm_lab.dataset(1).name
        assert cold_lab.dataset(1).triples == warm_lab.dataset(1).triples
        assert (
            cold_lab.ml_split(1).train.triples
            == warm_lab.ml_split(1).train.triples
        )
        # corpora and tokenizer
        assert cold_lab.chemistry_sentences == warm_lab.chemistry_sentences
        assert [
            cold_lab.wordpiece.piece_of(i)
            for i in range(len(cold_lab.wordpiece))
        ] == [
            warm_lab.wordpiece.piece_of(i)
            for i in range(len(warm_lab.wordpiece))
        ]
        # BERT round-trips with its pretraining curve attached
        assert np.allclose(
            cold_lab.bert.pretrain_losses, warm_lab.bert.pretrain_losses
        )

    def test_table_cells_match_cold_run(self, warm_store):
        root, cold_lab = warm_store
        warm_lab = Lab(_micro_config(str(root)))
        cold_report, _ = cold_lab.evaluate_random_forest(1, "W2V-Chem", "naive")
        warm_report, _ = warm_lab.evaluate_random_forest(1, "W2V-Chem", "naive")
        assert cold_report == warm_report
        assert cold_lab.evaluate_fine_tuned(1) == warm_lab.evaluate_fine_tuned(1)


def _json_stage(name="toy", deps=(), version="1", build=None):
    def save(artifact, entry_dir: Path):
        (entry_dir / "value.json").write_text(json.dumps(artifact))

    def load(entry_dir: Path, inputs):
        return json.loads((entry_dir / "value.json").read_text())

    return Stage(
        name=name,
        build=build or (lambda lab, inputs: {"value": 42}),
        deps=deps,
        version=version,
        save=save,
        load=load,
    )


class TestPutAndLocking:
    def test_put_creates_complete_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = _json_stage()
        store.put(stage, "k1", {"value": 1})
        assert store.has("toy", "k1")
        assert (store.entry_dir("toy", "k1") / "meta.json").is_file()
        loaded = store.load(stage, "k1", {})
        assert loaded == {"value": 1}

    def test_failed_save_leaves_no_entry_and_no_temp(self, tmp_path):
        store = ArtifactStore(tmp_path)

        def bad_save(artifact, entry_dir):
            raise RuntimeError("disk on fire")

        stage = Stage(
            name="toy",
            build=lambda lab, inputs: None,
            save=bad_save,
            load=lambda entry_dir, inputs: None,
        )
        with pytest.raises(RuntimeError, match="disk on fire"):
            store.put(stage, "k1", object())
        assert not store.has("toy", "k1")
        leftovers = [
            p for p in (tmp_path / "toy").iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_unpersistable_stage_is_store_error(self, tmp_path):
        store = ArtifactStore(tmp_path)
        bare = Stage(name="bare", build=lambda lab, inputs: None)
        with pytest.raises(ArtifactStoreError, match="not persistable"):
            store.put(bare, "k", object())
        with pytest.raises(ArtifactStoreError, match="not persistable"):
            store.load(bare, "k", {})

    def test_concurrent_build_or_load_builds_once(self, tmp_path):
        store = ArtifactStore(tmp_path, poll_interval_s=0.005)
        builds = []
        gate = threading.Event()

        def build():
            gate.wait(timeout=5)
            time.sleep(0.05)  # hold the lock long enough to force a wait
            builds.append(1)
            return {"value": 7}

        stage = _json_stage(build=lambda lab, inputs: None)
        results = []

        def worker():
            artifact, status = store.build_or_load(stage, "k", {}, build)
            results.append((artifact, status))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join()
        assert len(builds) == 1, "entry was double-built"
        assert sorted(status for _, status in results) == [
            "hit", "hit", "hit", "miss",
        ]
        assert all(artifact == {"value": 7} for artifact, _ in results)

    def test_stale_lock_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path, stale_lock_s=0.01, poll_interval_s=0.005)
        stage = _json_stage()
        lock = store._lock_path("toy", "k")
        lock.parent.mkdir(parents=True)
        lock.write_text("{}")
        os.utime(lock, (time.time() - 3600, time.time() - 3600))
        artifact, status = store.build_or_load(
            stage, "k", {}, lambda: {"value": 3}
        )
        assert (artifact, status) == ({"value": 3}, "miss")

    def test_lock_timeout_raises(self, tmp_path):
        store = ArtifactStore(
            tmp_path, lock_timeout_s=0.05, stale_lock_s=3600,
            poll_interval_s=0.005,
        )
        stage = _json_stage()
        lock = store._lock_path("toy", "k")
        lock.parent.mkdir(parents=True)
        lock.write_text("{}")  # held forever by a "live" builder
        with pytest.raises(ArtifactStoreError, match="timed out"):
            store.build_or_load(stage, "k", {}, lambda: {"value": 3})


class TestMaintenance:
    def test_ls_reports_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = _json_stage()
        store.put(stage, "k1", {"value": 1})
        store.put(stage, "k2", {"value": 2})
        infos = store.ls()
        assert [(i.stage, i.key) for i in infos] == [("toy", "k1"), ("toy", "k2")]
        assert all(i.n_files == 2 and i.n_bytes > 0 for i in infos)

    def test_invalidate_by_glob(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_json_stage(name="embedding-a"), "k", {"value": 1})
        store.put(_json_stage(name="embedding-b"), "k", {"value": 2})
        store.put(_json_stage(name="ontology"), "k", {"value": 3})
        removed = store.invalidate("embedding-*")
        assert sorted(i.stage for i in removed) == ["embedding-a", "embedding-b"]
        assert not store.has("embedding-a", "k")
        assert store.has("ontology", "k")

    def test_gc_sweeps_debris(self, tmp_path):
        store = ArtifactStore(tmp_path, stale_lock_s=0.01)
        stage = _json_stage()
        store.put(stage, "keep", {"value": 1})
        stage_dir = tmp_path / "toy"
        (stage_dir / ".tmp-abandoned").mkdir()
        (stage_dir / "incomplete").mkdir()  # no meta.json
        stale = stage_dir / "dead.lock"
        stale.write_text("{}")
        os.utime(stale, (time.time() - 3600, time.time() - 3600))
        removed = store.gc()
        removed_names = {p.name for p in removed}
        assert removed_names == {".tmp-abandoned", "incomplete", "dead.lock"}
        assert store.has("toy", "keep")

    def test_gc_max_age_evicts_old_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = _json_stage()
        store.put(stage, "old", {"value": 1})
        removed = store.gc(max_age_days=1, now=time.time() + 2 * 86_400)
        assert [p.name for p in removed] == ["old"]
        assert not store.has("toy", "old")


class TestSpanAttribution:
    """Store I/O attributes timing/size gauges to the enclosing span."""

    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        from repro.obs import trace

        tracer = trace.get_tracer()
        was_enabled = tracer.enabled
        trace.reset()
        tracer.enabled = True
        yield
        tracer.enabled = was_enabled
        trace.reset()

    def test_build_and_save_attributed_on_miss(self, tmp_path):
        from repro.obs.trace import span

        store = ArtifactStore(tmp_path)
        stage = _json_stage()
        with span("stage.toy") as sp:
            artifact, status = store.build_or_load(
                stage, "k1", {}, lambda: {"value": 42}
            )
        assert status == "miss" and artifact == {"value": 42}
        assert sp.gauges["store.build_s"] >= 0
        assert sp.gauges["store.save_s"] >= 0
        assert sp.gauges["store.entry_bytes"] > 0

    def test_load_attributed_on_hit(self, tmp_path):
        from repro.obs.trace import get_tracer, span

        store = ArtifactStore(tmp_path)
        stage = _json_stage()
        store.put(stage, "k1", {"value": 7})
        with span("stage.toy") as sp:
            value, status = store.build_or_load(
                stage, "k1", {}, lambda: {"value": 7}
            )
        assert status == "hit" and value == {"value": 7}
        assert sp.gauges["store.load_s"] >= 0
        assert sp.gauges["store.entry_bytes"] > 0
        assert "store.build_s" not in sp.gauges
        counters = get_tracer().counters()
        assert counters.get("store.loads") == 1
        assert counters.get("store.load_bytes", 0) > 0

    def test_entry_bytes_sums_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_json_stage(), "k1", {"value": list(range(100))})
        n_bytes = store.entry_bytes("toy", "k1")
        assert n_bytes > 100  # value.json + meta.json
        assert store.entry_bytes("toy", "missing") == 0

    def test_no_span_no_crash(self, tmp_path):
        # attribution degrades to counters-only when no span is open
        store = ArtifactStore(tmp_path)
        store.build_or_load(_json_stage(), "k1", {}, lambda: {"value": 1})
        assert store.has("toy", "k1")
