"""Tests for LabeledTriple and serialisation."""

import pytest

from repro.core.triples import LabeledTriple, triple_text
from repro.ontology.relations import HAS_ROLE, IS_A


def sample():
    return LabeledTriple(
        "CHEBI:1", "ammonium chloride", HAS_ROLE, "CHEBI:2", "ferroptosis inhibitor", 1
    )


class TestLabeledTriple:
    def test_as_text(self):
        assert sample().as_text() == (
            "(ammonium chloride, has_role, ferroptosis inhibitor)"
        )

    def test_key_ignores_label(self):
        positive = sample()
        negative = LabeledTriple(
            positive.subject_id,
            positive.subject_name,
            positive.relation,
            positive.object_id,
            positive.object_name,
            0,
        )
        assert positive.key() == negative.key()

    def test_label_validated(self):
        with pytest.raises(ValueError):
            LabeledTriple("a", "x", IS_A, "b", "y", 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            sample().label = 0


class TestTripleText:
    def test_default_separator(self):
        assert triple_text(sample()) == (
            "ammonium chloride [SEP] has role [SEP] ferroptosis inhibitor"
        )

    def test_custom_separator(self):
        assert triple_text(sample(), " | ") == (
            "ammonium chloride | has role | ferroptosis inhibitor"
        )
