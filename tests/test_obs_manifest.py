"""Tests for run manifests (repro.obs.manifest)."""

import json
import platform
from pathlib import Path

import pytest

from repro.core import LabConfig
from repro.obs import manifest as manifest_mod
from repro.obs import trace
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    ManifestError,
    build_manifest,
    load_manifest,
    manifest_path_for,
    record_config,
    set_context,
    write_artefact_manifest,
    write_manifest,
)
from repro.obs.trace import get_tracer, span


@pytest.fixture(autouse=True)
def clean_state():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    saved_context = dict(manifest_mod._run_context)
    trace.reset()
    manifest_mod.clear_context()
    yield
    tracer.enabled = was_enabled
    trace.reset()
    manifest_mod.clear_context()
    manifest_mod._run_context.update(saved_context)


class TestBuildManifest:
    def test_environment_facts(self):
        data = build_manifest()
        env = data["environment"]
        assert data["format"] == MANIFEST_FORMAT
        assert env["python_version"] == platform.python_version()
        import numpy
        assert env["numpy_version"] == numpy.__version__
        assert env["repro_version"]
        assert data["memory"]["peak_rss_bytes"] > 0

    def test_span_tree_and_counters_included(self):
        trace.enable()
        with span("stage") as sp:
            sp.incr("items", 7)
            with span("sub"):
                pass
        data = build_manifest()
        assert [s["name"] for s in data["spans"]] == ["stage"]
        assert data["spans"][0]["children"][0]["name"] == "sub"
        assert data["counters"] == {"stage.items": 7}

    def test_context_carries_lab_config(self):
        record_config(LabConfig(n_chemical_entities=123, seed=9))
        set_context(run_label="unit-test")
        data = build_manifest()
        assert data["context"]["lab_config"]["n_chemical_entities"] == 123
        assert data["context"]["lab_config"]["seed"] == 9
        assert data["context"]["run_label"] == "unit-test"


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        trace.enable()
        with span("stage") as sp:
            sp.incr("n", 2)
        path = tmp_path / "run.manifest.json"
        written = write_manifest(path)
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(written))  # JSON-stable
        assert loaded["spans"][0]["counters"] == {"n": 2}

    def test_write_creates_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.manifest.json"
        write_manifest(path)
        assert path.exists()


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="not found"):
            load_manifest(tmp_path / "absent.manifest.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.manifest.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ManifestError, match="corrupt"):
            load_manifest(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ManifestError, match="not a repro-manifest"):
            load_manifest(path)

    def test_non_dict_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_directory_path(self, tmp_path):
        with pytest.raises(ManifestError):
            load_manifest(tmp_path)


class TestArtefactManifests:
    def test_manifest_path_for(self):
        assert manifest_path_for("results/table2_datasets.txt") == Path(
            "results/table2_datasets.manifest.json"
        )
        assert manifest_path_for("plain") == Path("plain.manifest.json")

    def test_noop_while_disabled(self, tmp_path):
        get_tracer().enabled = False
        artefact = tmp_path / "table.txt"
        artefact.write_text("t")
        assert write_artefact_manifest(artefact) is None
        assert not manifest_path_for(artefact).exists()

    def test_written_while_enabled(self, tmp_path):
        trace.enable()
        with span("stage"):
            pass
        artefact = tmp_path / "table.txt"
        artefact.write_text("t")
        data = write_artefact_manifest(artefact, title="Table X")
        sidecar = manifest_path_for(artefact)
        assert sidecar.exists()
        assert data["title"] == "Table X"
        assert data["artefact"] == str(artefact)
        assert load_manifest(sidecar)["spans"][0]["name"] == "stage"
