"""Tests for the ontology census."""

import pytest

from repro.ontology.model import Entity, Ontology, SubOntology
from repro.ontology.relations import HAS_ROLE, IS_A
from repro.ontology.statistics import (
    CHEBI_REFERENCE_ENTITY_COUNTS,
    CHEBI_REFERENCE_RELATION_COUNTS,
    census,
)


def tiny():
    onto = Ontology()
    onto.add_entity(Entity("E:1", "a"))
    onto.add_entity(Entity("E:2", "b"))
    onto.add_entity(Entity("E:3", "r", SubOntology.ROLE))
    onto.add_statement("E:2", IS_A, "E:1")
    onto.add_statement("E:1", HAS_ROLE, "E:3")
    onto.add_statement("E:2", HAS_ROLE, "E:3")
    return onto


class TestCensus:
    def test_counts(self):
        result = census(tiny())
        assert result.total_entities == 3
        assert result.total_statements == 3
        assert result.entities_by_sub_ontology == {
            "chemical_entity": 2,
            "role": 1,
        }
        assert result.statements_by_relation == {"is_a": 1, "has_role": 2}

    def test_relation_shares_sorted_and_sum_to_one(self):
        shares = census(tiny()).relation_shares()
        assert list(shares) == ["has_role", "is_a"]
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_top_relations(self):
        top = census(tiny()).top_relations(1)
        assert top == [("has_role", 2)]

    def test_reference_tables_match_paper(self):
        assert CHEBI_REFERENCE_ENTITY_COUNTS["chemical_entity"] == 145_869
        assert CHEBI_REFERENCE_RELATION_COUNTS["is_a"] == 230_241
        assert sum(CHEBI_REFERENCE_RELATION_COUNTS.values()) == 318_438

    def test_synthetic_census_is_a_share_near_chebi(self, ontology):
        """The generator should land near ChEBI's 72.3% is_a share."""
        shares = census(ontology).relation_shares()
        assert 0.55 < shares["is_a"] < 0.85
