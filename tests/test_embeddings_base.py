"""Tests for the embedding interface, OOV policy, and random embeddings."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.embeddings.base import StaticEmbeddings
from repro.embeddings.random import RandomEmbeddings
from repro.text.vocab import Vocabulary


def static_model():
    vocab = Vocabulary({"acid": 3, "amino": 2})
    matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
    return StaticEmbeddings(vocab, matrix, name="test")


class TestStaticEmbeddings:
    def test_lookup(self):
        model = static_model()
        assert np.allclose(model.vector("acid"), [1.0, 0.0])
        assert model.contains("acid")
        assert not model.contains("zzz")

    def test_oov_fallback_deterministic(self):
        model = static_model()
        a = model.vector("unknown-token")
        b = model.vector("unknown-token")
        assert np.allclose(a, b)
        assert a.shape == (2,)
        assert np.all((a >= -1.0) & (a < 1.0))

    def test_oov_differs_per_token(self):
        model = static_model()
        assert not np.allclose(model.vector("oov1"), model.vector("oov2"))

    def test_matrix_shape_validated(self):
        vocab = Vocabulary({"a": 1})
        with pytest.raises(ValueError):
            StaticEmbeddings(vocab, np.zeros((3, 4)), name="bad")

    def test_encode_stacks(self):
        model = static_model()
        matrix = model.encode(["acid", "amino"])
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix[0], [1.0, 0.0])

    def test_encode_empty_raises(self):
        with pytest.raises(ValueError):
            static_model().encode([])

    def test_mean_vector(self):
        model = static_model()
        assert np.allclose(model.mean_vector(["acid", "amino"]), [0.5, 0.5])

    def test_phrase_level_default_false(self):
        assert static_model().phrase_level is False


class TestRandomEmbeddings:
    def test_every_token_hits(self):
        model = RandomEmbeddings(dim=8, seed=0)
        assert model.contains("anything")
        assert model.vocabulary is None

    def test_deterministic_in_seed_and_token(self):
        a = RandomEmbeddings(dim=8, seed=1)
        b = RandomEmbeddings(dim=8, seed=1)
        assert np.allclose(a.vector("acid"), b.vector("acid"))

    def test_seed_changes_vectors(self):
        a = RandomEmbeddings(dim=8, seed=1)
        b = RandomEmbeddings(dim=8, seed=2)
        assert not np.allclose(a.vector("acid"), b.vector("acid"))

    def test_uniform_range(self):
        model = RandomEmbeddings(dim=256, seed=0)
        vector = model.vector("token")
        assert np.all(vector >= -1.0) and np.all(vector < 1.0)
        assert abs(vector.mean()) < 0.2

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            RandomEmbeddings(dim=0)

    @given(st.text(min_size=1, max_size=12))
    def test_stable_for_arbitrary_tokens(self, token):
        model = RandomEmbeddings(dim=4, seed=3)
        assert np.allclose(model.vector(token), model.vector(token))
