"""Tests for the chemical tokenisers."""

import pytest
from hypothesis import given, strategies as st

from repro.text.tokenizer import ChemTokenizer, RegexpTokenizer


class TestRegexpTokenizer:
    def test_findall_mode(self):
        tokenizer = RegexpTokenizer(r"[a-z]+")
        assert tokenizer("ab, cd ef") == ["ab", "cd", "ef"]

    def test_gaps_mode(self):
        tokenizer = RegexpTokenizer(r"\s+", gaps=True)
        assert tokenizer("a  b c") == ["a", "b", "c"]

    def test_callable_equals_tokenize(self):
        tokenizer = RegexpTokenizer(r"\w+")
        assert tokenizer("x y") == tokenizer.tokenize("x y")

    def test_empty_string(self):
        assert RegexpTokenizer(r"\w+")("") == []


class TestChemTokenizer:
    def test_stereo_descriptor(self):
        assert ChemTokenizer()("(2S)-3-Hydroxybutanoic acid") == [
            "2s",
            "3",
            "hydroxybutanoic",
            "acid",
        ]

    def test_chebi_style_group_name(self):
        assert ChemTokenizer()("N(2)-L-glutamino(1-) group") == [
            "n",
            "2",
            "l",
            "glutamino",
            "1",
            "group",
        ]

    def test_lowercases(self):
        assert ChemTokenizer()("BETA-Estradiol") == ["beta", "estradiol"]

    def test_multi_locant(self):
        assert ChemTokenizer()("4,8,9-triacetyl-porphyrin") == [
            "4",
            "8",
            "9",
            "triacetyl",
            "porphyrin",
        ]

    def test_punctuation_only_gives_nothing(self):
        assert ChemTokenizer()("---(,)") == []

    @given(st.text(max_size=80))
    def test_tokens_are_lowercase_alphanumeric(self, text):
        for token in ChemTokenizer()(text):
            assert token
            assert all(c.islower() or c.isdigit() for c in token)

    @given(st.text(alphabet="abc123-,() ", max_size=60))
    def test_idempotent_on_own_output(self, text):
        tokenizer = ChemTokenizer()
        once = tokenizer(text)
        again = tokenizer(" ".join(once))
        assert once == again
