"""Tests for baselines and regression comparison (repro.perf.baseline).

The CLI round-trip tests at the bottom are the acceptance proof for
``repro perf compare``: exit 0 against freshly-updated baselines, exit 1
on a synthetically injected slowdown (and on workload drift), exit 2 on a
missing baseline.
"""

import json

import pytest

from repro.cli import main
from repro.perf.baseline import (
    BENCH_FORMAT,
    FINGERPRINT_FIELDS,
    Comparison,
    baseline_path,
    compare_exit_code,
    compare_result,
    environment_fingerprint,
    fingerprint_diff,
    load_baseline,
    load_results,
    parse_tolerance,
    result_payload,
    write_baseline,
    write_results,
)
from repro.perf.harness import Benchmark, PerfError, Protocol
from repro.perf.report import render_comparison


def _measured_payload(median_s=0.05, name="toy", checksum=None):
    """A synthetic area payload with a chosen median."""
    payload = {
        "format": BENCH_FORMAT,
        "area": name,
        "workload": {"n": 3},
        "environment": environment_fingerprint(),
        "name": name,
        "protocol": {"warmup": 0, "repeats": 3},
        "stats": {
            "n": 3,
            "min_s": median_s * 0.9,
            "max_s": median_s * 1.1,
            "mean_s": median_s,
            "median_s": median_s,
            "stdev_s": 0.001,
            "mad_s": 0.001,
            "p99_s": median_s * 1.1,
            "samples_s": [median_s] * 3,
        },
        "checksum": checksum or "abc123",
        "deterministic": True,
    }
    return payload


class TestRoundTrip:
    def test_write_and_load_baseline(self, tmp_path):
        payload = _measured_payload()
        path = write_baseline(payload, tmp_path)
        assert path == baseline_path("toy", tmp_path)
        assert load_baseline("toy", tmp_path) == payload

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(PerfError, match="no baseline"):
            load_baseline("toy", tmp_path)

    def test_load_corrupt_raises(self, tmp_path):
        baseline_path("toy", tmp_path).write_text("not json{")
        with pytest.raises(PerfError, match="corrupt"):
            load_baseline("toy", tmp_path)

    def test_load_wrong_format_raises(self, tmp_path):
        baseline_path("toy", tmp_path).write_text(
            json.dumps({"format": "something-else"})
        )
        with pytest.raises(PerfError, match="repro-bench-v1"):
            load_baseline("toy", tmp_path)

    def test_results_document_round_trip(self, tmp_path):
        payloads = [
            _measured_payload(name="b_area"),
            _measured_payload(name="a_area"),
        ]
        path = tmp_path / "results.json"
        write_results(payloads, path)
        loaded = load_results(path)
        # results come back sorted by area name
        assert [p["area"] for p in loaded] == ["a_area", "b_area"]

    def test_real_measurement_payload(self):
        result = Benchmark("toy", run=lambda state: 42).measure(
            Protocol(warmup=0, repeats=1)
        )
        payload = result_payload(result, {"n": 42})
        assert payload["format"] == BENCH_FORMAT
        assert payload["area"] == "toy"
        assert payload["workload"] == {"n": 42}
        assert payload["environment"]["python_version"]


class TestParseTolerance:
    def test_percent_form(self):
        assert parse_tolerance("25%") == pytest.approx(0.25)

    def test_fraction_form(self):
        assert parse_tolerance("0.1") == pytest.approx(0.1)

    def test_float_passthrough(self):
        assert parse_tolerance(0.5) == 0.5

    def test_garbage_raises(self):
        with pytest.raises(PerfError, match="tolerance"):
            parse_tolerance("fast-ish")

    def test_negative_raises(self):
        with pytest.raises(PerfError, match="non-negative"):
            parse_tolerance("-5%")


class TestCompareResult:
    def test_within_tolerance_is_ok(self):
        comparison = compare_result(
            _measured_payload(0.055), _measured_payload(0.050), tolerance=0.25
        )
        assert comparison.status == "ok"
        assert comparison.is_regression is False

    def test_slowdown_past_both_gates_is_regression(self):
        comparison = compare_result(
            _measured_payload(0.100), _measured_payload(0.050), tolerance=0.25
        )
        assert comparison.status == "regression"
        assert comparison.is_regression is True
        assert comparison.ratio == pytest.approx(2.0)

    def test_relative_breach_below_absolute_floor_is_ok(self):
        # +100% but only +0.5 ms: under the 2 ms noise floor, not flagged.
        comparison = compare_result(
            _measured_payload(0.0010), _measured_payload(0.0005), tolerance=0.25
        )
        assert comparison.status == "ok"

    def test_large_speedup_reported_as_faster(self):
        comparison = compare_result(
            _measured_payload(0.020), _measured_payload(0.050), tolerance=0.25
        )
        assert comparison.status == "faster"
        assert comparison.is_regression is False

    def test_checksum_mismatch_is_drift(self):
        comparison = compare_result(
            _measured_payload(0.050, checksum="new"),
            _measured_payload(0.050, checksum="old"),
        )
        assert comparison.status == "drift"
        assert comparison.is_regression is True

    def test_no_baseline_is_missing(self):
        comparison = compare_result(_measured_payload(), None)
        assert comparison.status == "missing"
        assert comparison.is_error is True

    def test_exit_codes(self):
        ok = Comparison(area="a", status="ok")
        slow = Comparison(area="b", status="regression")
        gone = Comparison(area="c", status="missing")
        assert compare_exit_code([ok]) == 0
        assert compare_exit_code([ok, slow]) == 1
        assert compare_exit_code([ok, slow, gone]) == 2  # errors dominate


class TestFingerprintDiff:
    def test_identical_environments_diff_empty(self):
        env = environment_fingerprint()
        assert fingerprint_diff(env, dict(env)) == {}

    def test_reports_each_differing_field_with_both_values(self):
        current = environment_fingerprint()
        baseline = dict(current)
        baseline["python_version"] = "3.8.0"
        baseline["numpy_version"] = "1.19.0"
        diffs = fingerprint_diff(current, baseline)
        assert set(diffs) == {"python_version", "numpy_version"}
        assert diffs["python_version"] == {
            "current": current["python_version"],
            "baseline": "3.8.0",
        }
        assert diffs["numpy_version"]["baseline"] == "1.19.0"

    def test_missing_environments_diff_against_none(self):
        env = environment_fingerprint()
        diffs = fingerprint_diff(env, None)
        assert set(diffs) == set(FINGERPRINT_FIELDS)
        assert all(v["baseline"] is None for v in diffs.values())

    def test_compare_result_carries_the_diff(self):
        current = _measured_payload(0.050)
        baseline = _measured_payload(0.050)
        baseline["environment"] = dict(baseline["environment"])
        baseline["environment"]["platform"] = "Windows-10"
        comparison = compare_result(current, baseline)
        assert comparison.status == "ok"
        assert comparison.fingerprint is not None
        assert set(comparison.fingerprint) == {"platform"}
        assert comparison.fingerprint["platform"]["baseline"] == "Windows-10"

    def test_matching_environment_leaves_fingerprint_none(self):
        comparison = compare_result(
            _measured_payload(0.050), _measured_payload(0.050)
        )
        assert comparison.fingerprint is None

    def test_render_comparison_names_the_differing_fields(self):
        baseline = _measured_payload(0.050)
        baseline["environment"] = dict(baseline["environment"])
        baseline["environment"]["python_version"] = "3.8.0"
        baseline["environment"]["machine"] = "armv7l"
        comparison = compare_result(_measured_payload(0.050), baseline)
        rendered = render_comparison([comparison], tolerance=0.25)
        assert "environment fingerprint differs" in rendered
        assert "python_version" in rendered
        assert "'3.8.0' (baseline)" in rendered
        assert "machine" in rendered
        assert "'armv7l' (baseline)" in rendered

    def test_render_comparison_quiet_when_environments_match(self):
        comparison = compare_result(
            _measured_payload(0.050), _measured_payload(0.050)
        )
        rendered = render_comparison([comparison], tolerance=0.25)
        assert "fingerprint" not in rendered


class TestCompareCli:
    """End-to-end exit-code proof through the real CLI and a real area."""

    @pytest.fixture()
    def measured(self, tmp_path):
        """A committed baseline and a results file for one cheap area."""
        d = str(tmp_path)
        results = str(tmp_path / "results.json")
        assert main(
            ["perf", "update", "--quick", "--dir", d, "obo_parse"]
        ) == 0
        assert main(
            ["perf", "run", "--quick", "--output", results, "obo_parse"]
        ) == 0
        return d, results

    def test_clean_run_exits_zero(self, measured, capsys):
        d, results = measured
        code = main(["perf", "compare", "--from", results, "--dir", d])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "within tolerance" in out

    def test_injected_slowdown_exits_nonzero(self, measured, capsys):
        d, results = measured
        # Synthetic slowdown: shrink the committed baseline's timings so
        # the (unchanged) current measurement reads as a big regression.
        path = baseline_path("obo_parse", d)
        baseline = json.loads(path.read_text())
        for key in ("median_s", "min_s", "max_s", "mean_s", "p99_s"):
            baseline["stats"][key] = baseline["stats"][key] / 20.0
        path.write_text(json.dumps(baseline, sort_keys=True))
        code = main(["perf", "compare", "--from", results, "--dir", d])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "REGRESSION" in out

    def test_workload_drift_exits_nonzero(self, measured, capsys):
        d, results = measured
        path = baseline_path("obo_parse", d)
        baseline = json.loads(path.read_text())
        baseline["checksum"] = "0000deadbeef"
        path.write_text(json.dumps(baseline, sort_keys=True))
        code = main(["perf", "compare", "--from", results, "--dir", d])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "DRIFT" in out

    def test_environment_mismatch_names_differing_fields(self, measured, capsys):
        d, results = measured
        path = baseline_path("obo_parse", d)
        baseline = json.loads(path.read_text())
        baseline["environment"]["python_version"] = "2.7.18"
        path.write_text(json.dumps(baseline, sort_keys=True))
        code = main(["perf", "compare", "--from", results, "--dir", d])
        out = capsys.readouterr().out
        assert code == 0, out  # a fingerprint mismatch warns, never blocks
        assert "environment fingerprint differs" in out
        assert "python_version" in out
        assert "'2.7.18' (baseline)" in out

    def test_missing_baseline_exits_two(self, measured, capsys):
        d, results = measured
        baseline_path("obo_parse", d).unlink()
        code = main(["perf", "compare", "--from", results, "--dir", d])
        out = capsys.readouterr().out
        assert code == 2, out
        assert "MISSING" in out

    def test_committed_repo_baselines_are_current(self):
        """The eight BENCH_<area>.json at the repo root parse, carry the
        v1 format, and name exactly the registered areas."""
        from pathlib import Path

        from repro.perf.areas import area_names

        repo_root = Path(__file__).resolve().parents[1]
        for name in area_names():
            baseline = load_baseline(name, repo_root)
            assert baseline["area"] == name
            assert baseline["deterministic"] is True
            assert baseline["stats"]["median_s"] > 0
