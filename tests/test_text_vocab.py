"""Tests for vocabulary management."""

import pytest
from hypothesis import given, strategies as st

from repro.text.vocab import Vocabulary, build_vocabulary


def sample_vocab():
    return Vocabulary({"acid": 10, "amino": 5, "zz": 5, "rare": 1})


class TestVocabulary:
    def test_ids_by_descending_frequency(self):
        vocab = sample_vocab()
        assert vocab.id_of("acid") == 0
        # frequency tie broken lexicographically: amino before zz
        assert vocab.id_of("amino") == 1
        assert vocab.id_of("zz") == 2

    def test_token_of_inverts_id_of(self):
        vocab = sample_vocab()
        for token in vocab:
            assert vocab.token_of(vocab.id_of(token)) == token

    def test_contains_and_get_id(self):
        vocab = sample_vocab()
        assert "acid" in vocab
        assert vocab.get_id("missing") is None
        with pytest.raises(KeyError):
            vocab.id_of("missing")

    def test_counts(self):
        vocab = sample_vocab()
        assert vocab.count("acid") == 10
        assert vocab.count("missing") == 0

    def test_most_common(self):
        assert sample_vocab().most_common(1) == [("acid", 10)]

    def test_top_fraction(self):
        vocab = sample_vocab()
        assert vocab.top_fraction(0.25) == ["acid"]
        assert len(vocab.top_fraction(1.0)) == 4
        with pytest.raises(ValueError):
            vocab.top_fraction(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary({})

    def test_oov_statistics(self):
        vocab = sample_vocab()
        n_oov, n_unique, fraction = vocab.oov_statistics(["acid", "new", "new2"])
        assert (n_oov, n_unique) == (2, 3)
        assert fraction == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            vocab.oov_statistics([])


class TestBuildVocabulary:
    def test_counts_across_streams(self):
        vocab = build_vocabulary([["a", "b"], ["a"]])
        assert vocab.count("a") == 2
        assert vocab.count("b") == 1

    def test_min_count_filters(self):
        vocab = build_vocabulary([["a", "a", "b"]], min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_all_filtered_raises(self):
        with pytest.raises(ValueError, match="min_count"):
            build_vocabulary([["a"]], min_count=5)

    def test_bad_min_count(self):
        with pytest.raises(ValueError):
            build_vocabulary([["a"]], min_count=0)

    @given(st.lists(st.lists(st.sampled_from("abcde"), max_size=6), min_size=1, max_size=20))
    def test_total_count_preserved(self, streams):
        total = sum(len(s) for s in streams)
        if total == 0:
            with pytest.raises(ValueError):
                build_vocabulary(streams)
        else:
            vocab = build_vocabulary(streams)
            assert sum(vocab.counts().values()) == total
