"""Tests for the checkpoint journal and ICL kill-and-resume behaviour."""

import json

import pytest

from repro.core.datasets import train_test_split_9_1
from repro.llm.client import ChatClient, ChatClientError, EchoClient
from repro.llm.icl import (
    ICLConfig,
    build_icl_queries,
    run_icl_experiment,
)
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table
from repro.obs.manifest import build_manifest, clear_context
from repro.resilience.checkpoint import CheckpointAbort, Journal
from repro.resilience.faults import FaultClock, FaultPlan, FaultyClient
from repro.resilience.retry import RetryPolicy

SMALL = ICLConfig(
    n_positive_queries=15,
    n_negative_queries=15,
    n_repeats=3,
    seed=0,
)


@pytest.fixture(autouse=True)
def _clean_run_context():
    """Resume runs write process-global manifest context; isolate tests."""
    clear_context()
    yield
    clear_context()


class CountingClient(ChatClient):
    """Echoes 'True'; counts completions and skips separately."""

    def __init__(self):
        self.completions = 0
        self.skips = 0

    def complete(self, prompt: str) -> str:
        self.completions += 1
        return "True"

    def skip_delivery(self, prompt: str) -> None:
        self.skips += 1


class FailingClient(ChatClient):
    """An endpoint that is down until ``healthy`` is flipped."""

    def __init__(self, healthy: bool = False):
        self.healthy = healthy

    def complete(self, prompt: str) -> str:
        if self.healthy:
            return "True"
        raise ChatClientError("endpoint is down", status=503, retryable=True,
                              kind="http")


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("0:0", "true")
            journal.record("0:1", "false")
            journal.record("__meta__", {"model": "m"})
        assert Journal(path).load() == {
            "0:0": "true", "0:1": "false", "__meta__": {"model": "m"},
        }

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load() == {}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("a", "true")
            journal.record("b", "false")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "val')  # crash mid-append
        assert Journal(path).load() == {"a": "true", "b": "false"}

    def test_non_record_line_stops_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "a", "value": 1}) + "\n")
            handle.write(json.dumps(["not", "a", "record"]) + "\n")
            handle.write(json.dumps({"key": "b", "value": 2}) + "\n")
        assert Journal(path).load() == {"a": 1}

    def test_wipe(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.record("a", 1)
        journal.wipe()
        assert not path.exists()
        assert journal.load() == {}
        journal.wipe()  # idempotent

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "j.jsonl"
        with Journal(path) as journal:
            journal.record("a", 1)
        assert Journal(path).load() == {"a": 1}


class TestICLCheckpointResume:
    def run(self, client, dataset, **kwargs):
        split = train_test_split_9_1(dataset, seed=0)
        queries = build_icl_queries(dataset, SMALL)
        return run_icl_experiment(
            client, list(split.train), queries, PromptVariant.BASE, SMALL,
            **kwargs,
        )

    def test_completed_journal_skips_every_delivery(self, tmp_path, task1_dataset):
        journal = tmp_path / "icl.jsonl"
        first = CountingClient()
        self.run(first, task1_dataset, journal=journal)
        assert first.completions == 90 and first.skips == 0

        second = CountingClient()
        result = self.run(second, task1_dataset, journal=journal)
        assert second.completions == 0
        assert second.skips == 90
        assert result.n_resumed == 90

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, task1_dataset):
        client = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        baseline = self.run(client, task1_dataset)

        journal = tmp_path / "icl.jsonl"
        killed = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        with pytest.raises(CheckpointAbort) as exc:
            self.run(killed, task1_dataset, journal=journal, max_deliveries=37)
        assert exc.value.delivered == 37
        assert exc.value.journal_path == str(journal)

        resumed_client = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        resumed = self.run(resumed_client, task1_dataset, journal=journal)
        assert resumed.n_resumed == 37
        assert resumed.accuracy_mean == baseline.accuracy_mean
        assert resumed.kappa == baseline.kappa
        assert resumed.f1_mean == baseline.f1_mean
        assert resumed.n_unclassified == baseline.n_unclassified

    def test_mismatched_journal_rejected(self, tmp_path, task1_dataset):
        journal = tmp_path / "icl.jsonl"
        self.run(EchoClient("True"), task1_dataset, journal=journal)
        with pytest.raises(ValueError, match="different experiment"):
            self.run(CountingClient(), task1_dataset, journal=journal)

    def test_resume_recorded_in_manifest_context(self, tmp_path, task1_dataset):
        journal = tmp_path / "icl.jsonl"
        with pytest.raises(CheckpointAbort):
            self.run(CountingClient(), task1_dataset, journal=journal,
                     max_deliveries=10)
        self.run(CountingClient(), task1_dataset, journal=journal)
        context = build_manifest()["context"]
        assert context["resumed"] is True
        assert context["resumed_deliveries"] == 10
        assert context["resume_journal"] == str(journal)

    def test_fresh_run_leaves_no_resume_context(self, tmp_path, task1_dataset):
        self.run(CountingClient(), task1_dataset,
                 journal=tmp_path / "icl.jsonl")
        assert "resumed" not in build_manifest()["context"]


class TestGracefulDegradation:
    def run(self, client, dataset, **kwargs):
        split = train_test_split_9_1(dataset, seed=0)
        queries = build_icl_queries(dataset, SMALL)
        return run_icl_experiment(
            client, list(split.train), queries, PromptVariant.BASE, SMALL,
            **kwargs,
        )

    def test_dead_endpoint_degrades_not_crashes(self, task1_dataset):
        result = self.run(FailingClient(), task1_dataset)
        assert result.n_failed == 90
        assert result.n_unclassified == 90
        assert result.accuracy_mean == 0.0

    def test_failed_outcomes_survive_resume(self, tmp_path, task1_dataset):
        journal = tmp_path / "icl.jsonl"
        with pytest.raises(CheckpointAbort):
            self.run(FailingClient(), task1_dataset, journal=journal,
                     max_deliveries=20)
        # The healed endpoint answers the rest; journaled failures persist.
        result = self.run(FailingClient(healthy=True), task1_dataset,
                          journal=journal)
        assert result.n_resumed == 20
        assert result.n_failed == 20

    def test_error_faults_with_retry_are_invisible(self, task1_dataset):
        """Retryable injected faults leave the table byte-identical."""
        baseline_client = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        baseline = self.run(baseline_client, task1_dataset)

        inner = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        plan = FaultPlan.parse("timeout:0.1,http500:0.05,malformed:0.05", seed=4)
        faulty = FaultyClient(inner, plan)
        retry = RetryPolicy(base_delay=0.01, clock=FaultClock(), seed=0)
        result = self.run(faulty, task1_dataset, retry=retry)

        assert sum(faulty.injected.values()) > 0  # faults actually fired
        assert result.n_failed == 0
        assert result.accuracy_mean == baseline.accuracy_mean
        assert result.kappa == baseline.kappa
        assert result.f1_mean == baseline.f1_mean
        assert result.precision_mean == baseline.precision_mean
        assert result.recall_mean == baseline.recall_mean

    def test_corruption_faults_degrade_gracefully(self, task1_dataset):
        inner = EchoClient("True")
        faulty = FaultyClient(inner, FaultPlan.parse("garbage:0.2", seed=1))
        result = self.run(faulty, task1_dataset)
        # Garbage completions parse as unclassified, not crashes.
        assert result.n_unclassified > 0
        assert result.n_failed == 0
