"""Gradient checks and behaviour tests for the nn layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear, Module, Parameter


def numeric_grad_check(layer, params, x, loss_weights, forward, eps=1e-6, tol=1e-5):
    """Compare analytic parameter grads against central differences.

    ``forward`` maps the input to the layer output; loss = sum(out * weights).
    """
    out = forward(x)
    layer.zero_grad()
    layer.backward(loss_weights)
    for parameter in params:
        flat = parameter.value.reshape(-1)
        grad = parameter.grad.reshape(-1)
        rng = np.random.default_rng(0)
        for _ in range(4):
            i = int(rng.integers(0, flat.size))
            orig = flat[i]
            flat[i] = orig + eps
            loss_plus = float(np.sum(forward(x) * loss_weights))
            flat[i] = orig - eps
            loss_minus = float(np.sum(forward(x) * loss_weights))
            flat[i] = orig
            numeric = (loss_plus - loss_minus) / (2 * eps)
            denom = max(1e-3, abs(numeric) + abs(grad[i]))
            assert abs(numeric - grad[i]) / denom < tol, (
                f"{parameter.name}[{i}]: numeric={numeric}, analytic={grad[i]}"
            )


class TestParameterModule:
    def test_zero_grad(self):
        parameter = Parameter(np.ones(3))
        parameter.grad += 5.0
        parameter.zero_grad()
        assert np.all(parameter.grad == 0)

    def test_module_collects_nested_parameters(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(2, 3)
                self.blocks = [Linear(3, 3), Linear(3, 1)]

        outer = Outer()
        assert len(outer.parameters()) == 6  # 3 weights + 3 biases

    def test_set_training_recurses(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5)

        outer = Outer()
        outer.set_training(False)
        assert outer.drop.training is False

    def test_n_parameters(self):
        lin = Linear(4, 5)
        assert lin.n_parameters() == 4 * 5 + 5


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(3, 5, seed=1)
        out = lin.forward(np.ones((2, 7, 3)))
        assert out.shape == (2, 7, 5)

    def test_gradient_check(self):
        lin = Linear(4, 3, seed=1)
        x = np.random.default_rng(0).normal(size=(5, 4))
        weights = np.random.default_rng(1).normal(size=(5, 3))
        numeric_grad_check(lin, lin.parameters(), x, weights, lin.forward)

    def test_input_gradient(self):
        lin = Linear(3, 2, seed=1)
        x = np.random.default_rng(0).normal(size=(4, 3))
        lin.forward(x)
        grad_in = lin.backward(np.ones((4, 2)))
        assert grad_in.shape == x.shape
        assert np.allclose(grad_in, np.ones((4, 2)) @ lin.weight.value.T)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.ones((1, 2)))


class TestEmbedding:
    def test_lookup_and_grad_accumulation(self):
        emb = Embedding(5, 3, seed=1)
        ids = np.array([[0, 1, 0]])
        out = emb.forward(ids)
        assert out.shape == (1, 3, 3)
        emb.zero_grad()
        emb.backward(np.ones((1, 3, 3)))
        # id 0 appears twice -> gradient 2, id 1 once -> 1
        assert np.allclose(emb.weight.grad[0], 2.0)
        assert np.allclose(emb.weight.grad[1], 1.0)
        assert np.allclose(emb.weight.grad[2], 0.0)


class TestLayerNorm:
    def test_normalises(self):
        ln = LayerNorm(8)
        out = ln.forward(np.random.default_rng(0).normal(3.0, 2.0, size=(4, 8)))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradient_check(self):
        ln = LayerNorm(6)
        ln.gamma.value[:] = np.linspace(0.5, 1.5, 6)
        x = np.random.default_rng(0).normal(size=(3, 6))
        weights = np.random.default_rng(1).normal(size=(3, 6))
        numeric_grad_check(ln, ln.parameters(), x, weights, ln.forward)

    def test_input_gradient_numeric(self):
        ln = LayerNorm(5)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 5))
        weights = rng.normal(size=(2, 5))
        ln.forward(x)
        analytic = ln.backward(weights)
        eps = 1e-6
        for i in range(2):
            for j in range(5):
                x[i, j] += eps
                plus = float(np.sum(ln.forward(x) * weights))
                x[i, j] -= 2 * eps
                minus = float(np.sum(ln.forward(x) * weights))
                x[i, j] += eps
                numeric = (plus - minus) / (2 * eps)
                assert abs(numeric - analytic[i, j]) < 1e-5


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, seed=1)
        drop.set_training(False)
        x = np.ones((3, 3))
        assert np.allclose(drop.forward(x), x)

    def test_train_mode_scales(self):
        drop = Dropout(0.5, seed=1)
        x = np.ones((200, 100))
        out = drop.forward(x)
        # surviving entries are scaled by 1/(1-p) = 2
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, seed=1)
        x = np.ones((10, 10))
        out = drop.forward(x)
        grad = drop.backward(np.ones((10, 10)))
        assert np.allclose(grad, out)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestGELU:
    def test_known_values(self):
        gelu = GELU()
        assert gelu.forward(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu.forward(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)

    def test_gradient_numeric(self):
        gelu = GELU()
        x = np.linspace(-3, 3, 13)
        gelu.forward(x)
        analytic = gelu.backward(np.ones_like(x))
        eps = 1e-6
        numeric = (gelu.forward(x + eps) - gelu.forward(x - eps)) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-6)
