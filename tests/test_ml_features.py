"""Tests for the Algorithm 1 feature pipeline."""

import numpy as np
import pytest

from repro.core.triples import LabeledTriple
from repro.embeddings.random import RandomEmbeddings
from repro.ml.features import (
    FeatureExtractor,
    triple_component_tokens,
    triple_to_sequence,
    triple_to_vector,
)
from repro.ontology.relations import HAS_ROLE, IS_A


def sample_triple():
    return LabeledTriple(
        "a", "3-hydroxybutanoic acid", HAS_ROLE, "b", "human metabolite", 1
    )


class TestComponentTokens:
    def test_tokenises_all_components(self):
        subject, relation, obj = triple_component_tokens(sample_triple())
        assert subject == ["3", "hydroxybutanoic", "acid"]
        assert relation == ["has", "role"]
        assert obj == ["human", "metabolite"]

    def test_filter_applied(self):
        drop_short = lambda tokens: [t for t in tokens if len(t) > 2]
        subject, _, _ = triple_component_tokens(sample_triple(), token_filter=drop_short)
        assert subject == ["hydroxybutanoic", "acid"]

    def test_filter_emptying_component_ignored(self):
        kill_all = lambda tokens: []
        subject, relation, obj = triple_component_tokens(
            sample_triple(), token_filter=kill_all
        )
        assert subject  # original tokens kept


class TestTripleToVector:
    def test_shape_is_three_times_dim(self):
        emb = RandomEmbeddings(dim=16, seed=0)
        assert triple_to_vector(sample_triple(), emb).shape == (48,)

    def test_is_concatenation_of_component_means(self):
        emb = RandomEmbeddings(dim=8, seed=0)
        vector = triple_to_vector(sample_triple(), emb)
        subject, relation, obj = triple_component_tokens(sample_triple())
        assert np.allclose(vector[:8], emb.mean_vector(subject))
        assert np.allclose(vector[8:16], emb.mean_vector(relation))
        assert np.allclose(vector[16:], emb.mean_vector(obj))

    def test_deterministic(self):
        emb = RandomEmbeddings(dim=8, seed=0)
        assert np.allclose(
            triple_to_vector(sample_triple(), emb),
            triple_to_vector(sample_triple(), emb),
        )


class TestTripleToSequence:
    def test_length_includes_separators(self):
        emb = RandomEmbeddings(dim=8, seed=0)
        sequence = triple_to_sequence(sample_triple(), emb)
        subject, relation, obj = triple_component_tokens(sample_triple())
        assert sequence.shape == (len(subject) + len(relation) + len(obj) + 2, 8)

    def test_separator_rows_identical(self):
        emb = RandomEmbeddings(dim=8, seed=0)
        sequence = triple_to_sequence(sample_triple(), emb)
        subject, _, _ = triple_component_tokens(sample_triple())
        sep1 = sequence[len(subject)]
        assert np.allclose(sep1, emb.oov_vector("[SEP]"))


class TestFeatureExtractor:
    def test_matrix_shape(self):
        emb = RandomEmbeddings(dim=8, seed=0)
        extractor = FeatureExtractor(emb)
        triples = [sample_triple()] * 5
        assert extractor.matrix(triples).shape == (5, 24)

    def test_labels(self):
        extractor = FeatureExtractor(RandomEmbeddings(dim=4))
        labels = extractor.labels([sample_triple()])
        assert labels.tolist() == [1]

    def test_empty_raises(self):
        extractor = FeatureExtractor(RandomEmbeddings(dim=4))
        with pytest.raises(ValueError):
            extractor.matrix([])
        with pytest.raises(ValueError):
            extractor.sequences([])

    def test_phrase_level_model_uses_whole_components(self, lab):
        contextual = lab.embedding("PubmedBERT")
        triple = sample_triple()
        vector = triple_to_vector(triple, contextual)
        assert vector.shape == (3 * contextual.dim,)
        direct = contextual.vector(triple.subject_name)
        assert np.allclose(vector[: contextual.dim], direct)
