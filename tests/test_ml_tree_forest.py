"""Tests for the CART tree and Random Forest."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.forest import RandomForest, RandomForestConfig
from repro.ml.tree import DecisionTree, DecisionTreeConfig


def separable(n=200, seed=0):
    """Labels determined by feature 0's sign; feature 1 is noise."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(np.int64)
    return x, y


def xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    return x, y


class TestDecisionTree:
    def test_fits_separable(self):
        x, y = separable()
        tree = DecisionTree(DecisionTreeConfig(max_features=None)).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.97

    def test_fits_xor_with_depth(self):
        x, y = xor_data()
        tree = DecisionTree(
            DecisionTreeConfig(max_depth=6, max_features=None)
        ).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.9

    def test_depth_limit_respected(self):
        x, y = xor_data()
        tree = DecisionTree(
            DecisionTreeConfig(max_depth=2, max_features=None)
        ).fit(x, y)
        assert tree.depth() <= 2

    def test_pure_node_is_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        y = np.ones(50, dtype=np.int64)
        tree = DecisionTree().fit(x, y)
        assert tree.depth() == 0
        assert np.all(tree.predict_proba(x) == 1.0)

    def test_feature_importances_identify_signal(self):
        x, y = separable(400)
        tree = DecisionTree(DecisionTreeConfig(max_features=None)).fit(x, y)
        assert tree.feature_importances_.argmax() == 0
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_input_validation(self):
        tree = DecisionTree()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((2, 2)), np.array([0, 3]))
        with pytest.raises(RuntimeError):
            tree.predict(np.zeros((1, 2)))

    def test_predict_dimension_check(self):
        x, y = separable(50)
        tree = DecisionTree().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 7)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeConfig(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeConfig(min_samples_split=1)

    def test_resolve_max_features(self):
        assert DecisionTreeConfig(max_features=None).resolve_max_features(10) == 10
        assert DecisionTreeConfig(max_features="sqrt").resolve_max_features(100) == 10
        assert DecisionTreeConfig(max_features=3).resolve_max_features(10) == 3
        with pytest.raises(ValueError):
            DecisionTreeConfig(max_features="bad").resolve_max_features(10)

    def test_min_samples_leaf_respected(self):
        x, y = separable(30)
        tree = DecisionTree(
            DecisionTreeConfig(min_samples_leaf=10, max_features=None)
        ).fit(x, y)
        # With a leaf floor of 10 on 30 samples the tree must stay shallow.
        assert tree.depth() <= 2

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000))
    def test_probabilities_in_unit_interval(self, seed):
        x, y = xor_data(60, seed)
        if y.min() == y.max():
            return
        tree = DecisionTree(DecisionTreeConfig(seed=seed)).fit(x, y)
        probs = tree.predict_proba(x)
        assert np.all((probs >= 0.0) & (probs <= 1.0))


class TestRandomForest:
    def test_beats_single_tree_on_noisy_data(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 10))
        signal = x[:, 0] + 0.5 * x[:, 1]
        y = (signal + rng.normal(0, 1.0, 500) > 0).astype(np.int64)
        x_test = rng.normal(size=(300, 10))
        y_test = (x_test[:, 0] + 0.5 * x_test[:, 1] > 0).astype(np.int64)
        tree_acc = (
            DecisionTree(DecisionTreeConfig(seed=0)).fit(x, y).predict(x_test) == y_test
        ).mean()
        forest_acc = (
            RandomForest(RandomForestConfig(n_estimators=25, seed=0))
            .fit(x, y)
            .predict(x_test)
            == y_test
        ).mean()
        assert forest_acc >= tree_acc - 0.02

    def test_predict_proba_is_tree_mean(self):
        x, y = separable(100)
        forest = RandomForest(RandomForestConfig(n_estimators=5, seed=0)).fit(x, y)
        manual = np.mean([t.predict_proba(x) for t in forest.trees], axis=0)
        assert np.allclose(forest.predict_proba(x), manual)

    def test_deterministic(self):
        x, y = separable(100)
        a = RandomForest(RandomForestConfig(n_estimators=4, seed=5)).fit(x, y)
        b = RandomForest(RandomForestConfig(n_estimators=4, seed=5)).fit(x, y)
        assert np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_feature_importances_aggregated(self):
        x, y = separable(300)
        forest = RandomForest(RandomForestConfig(n_estimators=10, seed=0)).fit(x, y)
        assert forest.feature_importances_.argmax() == 0

    def test_component_importances(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 6))  # dim=2 per component
        y = (x[:, 0] > 0).astype(np.int64)
        forest = RandomForest(RandomForestConfig(n_estimators=8, seed=0)).fit(x, y)
        blocks = forest.component_importances(2)
        assert blocks.shape == (3,)
        assert blocks.argmax() == 0  # signal lives in the subject block
        with pytest.raises(ValueError):
            forest.component_importances(5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 3)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomForestConfig(n_estimators=0)
