"""Tests for the ICL experiment protocol."""

import pytest

from repro.core.datasets import train_test_split_9_1
from repro.llm.client import EchoClient
from repro.llm.icl import (
    ICLConfig,
    build_icl_queries,
    run_icl_experiment,
)
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table


SMALL = ICLConfig(
    n_positive_queries=15,
    n_negative_queries=15,
    n_repeats=3,
    seed=0,
)


class TestBuildQueries:
    def test_balanced_and_is_a_only(self, task1_dataset):
        queries = build_icl_queries(task1_dataset, SMALL)
        assert len(queries) == 30
        assert sum(q.label for q in queries) == 15
        assert all(q.relation.name == "is_a" for q in queries)

    def test_deterministic(self, task1_dataset):
        a = build_icl_queries(task1_dataset, SMALL)
        b = build_icl_queries(task1_dataset, SMALL)
        assert [q.key() for q in a] == [q.key() for q in b]

    def test_too_many_requested_raises(self, task1_dataset):
        config = ICLConfig(n_positive_queries=10**6, seed=0)
        with pytest.raises(ValueError, match="eligible"):
            build_icl_queries(task1_dataset, config)

    def test_token_limit_respected(self, task1_dataset):
        config = ICLConfig(
            n_positive_queries=5, n_negative_queries=5, max_query_tokens=12, seed=0
        )
        from repro.text.tokenizer import ChemTokenizer

        tokenizer = ChemTokenizer()
        for query in build_icl_queries(task1_dataset, config):
            assert len(tokenizer(query.as_text())) < 12


class TestRunExperiment:
    def test_simulated_gpt4_result_shape(self, task1_dataset):
        split = train_test_split_9_1(task1_dataset, seed=0)
        queries = build_icl_queries(task1_dataset, SMALL)
        client = SimulatedChatModel(
            GPT4_PROFILE, truth_table(task1_dataset), 1, seed=0
        )
        result = run_icl_experiment(
            client, list(split.train), queries, PromptVariant.BASE, SMALL
        )
        assert 0.5 < result.accuracy_mean <= 1.0
        assert result.kappa > 0.7
        assert result.n_unclassified == 0
        row = result.as_row()
        assert row["model"] == "gpt-4"

    def test_echo_true_client(self, task1_dataset):
        """A client that always answers True gets exactly 50% accuracy."""
        split = train_test_split_9_1(task1_dataset, seed=0)
        queries = build_icl_queries(task1_dataset, SMALL)
        result = run_icl_experiment(
            EchoClient("True"), list(split.train), queries, PromptVariant.BASE, SMALL
        )
        assert result.accuracy_mean == pytest.approx(0.5)
        assert result.recall_mean == pytest.approx(1.0)
        assert result.kappa == pytest.approx(1.0)

    def test_unclassifiable_client(self, task1_dataset):
        split = train_test_split_9_1(task1_dataset, seed=0)
        queries = build_icl_queries(task1_dataset, SMALL)
        result = run_icl_experiment(
            EchoClient("no idea"), list(split.train), queries, PromptVariant.BASE, SMALL
        )
        assert result.accuracy_mean == 0.0
        assert result.n_unclassified == 3 * 30
        assert result.unclassified_percent == pytest.approx(100.0)

    def test_empty_queries_rejected(self, task1_dataset):
        split = train_test_split_9_1(task1_dataset, seed=0)
        with pytest.raises(ValueError):
            run_icl_experiment(EchoClient(), list(split.train), [], config=SMALL)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ICLConfig(n_repeats=1)
        with pytest.raises(ValueError):
            ICLConfig(n_positive_queries=0)
