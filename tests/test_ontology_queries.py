"""Tests for graph queries: siblings, ancestors, depth, DAG checks."""

import pytest

from repro.ontology.model import Entity, Ontology
from repro.ontology.queries import ancestors, depth_map, descendants, is_dag, siblings
from repro.ontology.relations import IS_A


def diamond():
    """root -> (a, b); a,b -> leaf (a DAG with a diamond)."""
    onto = Ontology()
    for ident in ("root", "a", "b", "leaf", "lonely"):
        onto.add_entity(Entity(ident, ident))
    onto.add_statement("a", IS_A, "root")
    onto.add_statement("b", IS_A, "root")
    onto.add_statement("leaf", IS_A, "a")
    onto.add_statement("leaf", IS_A, "b")
    return onto


class TestSiblings:
    def test_shared_parent(self):
        onto = diamond()
        assert siblings(onto, "a") == {"b"}
        assert siblings(onto, "b") == {"a"}

    def test_excludes_self(self):
        onto = diamond()
        assert "a" not in siblings(onto, "a")

    def test_no_parents_no_siblings(self):
        onto = diamond()
        assert siblings(onto, "root") == set()
        assert siblings(onto, "lonely") == set()

    def test_multi_parent_union(self):
        onto = diamond()
        onto.add_entity(Entity("c", "c"))
        onto.add_statement("c", IS_A, "a")
        assert siblings(onto, "leaf") == {"c"}


class TestAncestorsDescendants:
    def test_ancestors_transitive(self):
        onto = diamond()
        assert ancestors(onto, "leaf") == {"a", "b", "root"}
        assert ancestors(onto, "root") == set()

    def test_descendants_transitive(self):
        onto = diamond()
        assert descendants(onto, "root") == {"a", "b", "leaf"}
        assert descendants(onto, "leaf") == set()


class TestDepthMap:
    def test_shortest_depth(self):
        onto = diamond()
        depths = depth_map(onto)
        assert depths["root"] == 0
        assert depths["a"] == depths["b"] == 1
        assert depths["leaf"] == 2
        assert depths["lonely"] == 0

    def test_all_entities_present(self):
        onto = diamond()
        assert set(depth_map(onto)) == set(onto.entity_ids())


class TestIsDag:
    def test_diamond_is_dag(self):
        assert is_dag(diamond())

    def test_cycle_detected(self):
        onto = Ontology()
        for ident in ("x", "y", "z"):
            onto.add_entity(Entity(ident, ident))
        onto.add_statement("x", IS_A, "y")
        onto.add_statement("y", IS_A, "z")
        onto.add_statement("z", IS_A, "x")
        assert not is_dag(onto)

    def test_synthetic_ontology_is_dag(self, ontology):
        assert is_dag(ontology)
