"""Golden round-trip and validation tests for the serve wire format."""

import json

import pytest

from repro.ontology.relations import HAS_ROLE
from repro.serve.schemas import (
    MAX_TRIPLES_PER_REQUEST,
    SERVE_FORMAT,
    SchemaError,
    classify_response,
    error_response,
    parse_classify_request,
    parse_triple,
    render_json,
    triple_payload,
)

TRIPLE = {
    "subject": "ammonium chloride",
    "relation": "has_role",
    "object": "ferroptosis inhibitor",
}


class TestParseTriple:
    def test_names_only_gets_placeholder_ids(self):
        triple = parse_triple(TRIPLE)
        assert triple.subject_name == "ammonium chloride"
        assert triple.relation is HAS_ROLE
        assert triple.object_name == "ferroptosis inhibitor"
        assert triple.subject_id == "req:ammonium chloride"
        assert triple.object_id == "req:ferroptosis inhibitor"

    def test_explicit_ids_kept(self):
        triple = parse_triple(
            {**TRIPLE, "subject_id": "CHEBI:1", "object_id": "CHEBI:2"}
        )
        assert triple.subject_id == "CHEBI:1"
        assert triple.object_id == "CHEBI:2"

    def test_relation_label_spelling_accepted(self):
        triple = parse_triple({**TRIPLE, "relation": "has role"})
        assert triple.relation is HAS_ROLE

    def test_unknown_relation_is_schema_error(self):
        with pytest.raises(SchemaError):
            parse_triple({**TRIPLE, "relation": "is_best_friends_with"})

    @pytest.mark.parametrize("missing", ["subject", "relation", "object"])
    def test_missing_field_is_schema_error(self, missing):
        broken = {k: v for k, v in TRIPLE.items() if k != missing}
        with pytest.raises(SchemaError):
            parse_triple(broken)

    def test_non_object_is_schema_error(self):
        with pytest.raises(SchemaError):
            parse_triple(["not", "a", "dict"])

    def test_payload_round_trip(self):
        triple = parse_triple(TRIPLE)
        again = parse_triple(triple_payload(triple))
        assert again == triple


class TestParseClassifyRequest:
    def test_single_triple_spelling(self):
        request = parse_classify_request({"triple": TRIPLE, "backend": "rf"})
        assert request.batch is False
        assert request.backend == "rf"
        assert len(request.triples) == 1

    def test_batch_spelling(self):
        request = parse_classify_request({"triples": [TRIPLE, TRIPLE]})
        assert request.batch is True
        assert request.backend is None
        assert len(request.triples) == 2

    def test_accepts_bytes_and_str_bodies(self):
        document = json.dumps({"triple": TRIPLE})
        assert parse_classify_request(document).triples
        assert parse_classify_request(document.encode("utf-8")).triples

    def test_request_round_trips_through_its_payload(self):
        request = parse_classify_request({"triples": [TRIPLE], "backend": "ft"})
        again = parse_classify_request(render_json(request.to_payload()))
        assert again == request

    @pytest.mark.parametrize(
        "body",
        [
            "not json {{{",
            b"\xff\xfe",
            ["a", "list"],
            {},  # neither spelling
            {"triple": TRIPLE, "triples": [TRIPLE]},  # both spellings
            {"triples": []},
            {"triples": "nope"},
            {"triple": TRIPLE, "backend": 7},
        ],
    )
    def test_malformed_bodies_are_schema_errors(self, body):
        with pytest.raises(SchemaError):
            parse_classify_request(body)

    def test_oversized_batch_rejected(self):
        body = {"triples": [TRIPLE] * (MAX_TRIPLES_PER_REQUEST + 1)}
        with pytest.raises(SchemaError, match="cap"):
            parse_classify_request(body)


class TestResponses:
    def test_batch_response_golden(self):
        payload = classify_response("rf", [1, 0, None], batched_with=12)
        assert render_json(payload) == (
            '{"backend":"rf","batched_with":12,'
            f'"format":"{SERVE_FORMAT}","labels":[1,0,null],"n":3}}'
        )

    def test_single_response_golden(self):
        payload = classify_response("icl", [None], batch=False)
        assert render_json(payload) == (
            f'{{"backend":"icl","format":"{SERVE_FORMAT}","label":null,"n":1}}'
        )

    def test_error_response_golden(self):
        payload = error_response(503, "shed", retry_after_s=0.25)
        assert render_json(payload) == (
            f'{{"error":"shed","format":"{SERVE_FORMAT}",'
            '"retry_after_s":0.25,"status":503}'
        )

    def test_render_json_is_canonical(self):
        # Same dict, different insertion order -> identical bytes.
        a = render_json({"b": 1, "a": 2})
        b = render_json({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'
