"""Tests for Fleiss' kappa."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.agreement import fleiss_kappa


class TestFleissKappa:
    def test_perfect_agreement(self):
        ratings = [["a"] * 5, ["b"] * 5, ["a"] * 5]
        assert fleiss_kappa(ratings) == pytest.approx(1.0)

    def test_single_category_everywhere(self):
        assert fleiss_kappa([["x"] * 3, ["x"] * 3]) == pytest.approx(1.0)

    def test_random_ratings_near_zero(self):
        rng = np.random.default_rng(0)
        ratings = [list(rng.choice(["a", "b"], size=5)) for _ in range(600)]
        assert abs(fleiss_kappa(ratings)) < 0.08

    def test_textbook_example(self):
        # Fleiss (1971)-style check against a hand-computed value.
        ratings = [
            ["a", "a", "b"],
            ["a", "b", "b"],
            ["a", "a", "a"],
            ["b", "b", "b"],
        ]
        # P_i = [1/3, 1/3, 1, 1]; P-bar = 2/3; p_a = p_b = 1/2 -> P_e = 1/2.
        expected = (2 / 3 - 0.5) / (1 - 0.5)
        assert fleiss_kappa(ratings) == pytest.approx(expected)

    def test_disagreement_is_negative(self):
        # Two raters always disagreeing: kappa below zero.
        ratings = [["a", "b"], ["b", "a"], ["a", "b"], ["b", "a"]]
        assert fleiss_kappa(ratings) < 0.0

    def test_requires_two_raters(self):
        with pytest.raises(ValueError, match="two ratings"):
            fleiss_kappa([["a"]])

    def test_requires_equal_rater_counts(self):
        with pytest.raises(ValueError, match="expected"):
            fleiss_kappa([["a", "b"], ["a"]])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fleiss_kappa([])

    @given(st.integers(0, 2**32 - 1), st.integers(2, 6), st.integers(2, 30))
    def test_kappa_at_most_one(self, seed, n_raters, n_subjects):
        rng = np.random.default_rng(seed)
        ratings = [
            list(rng.choice(["a", "b", "c"], size=n_raters))
            for _ in range(n_subjects)
        ]
        assert fleiss_kappa(ratings) <= 1.0 + 1e-12
