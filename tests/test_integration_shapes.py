"""Integration tests: the paper's qualitative findings at miniature scale.

These use the shared session Lab (400 entities, 600 training triples), so
thresholds are deliberately loose — the full-shape assertions live in the
benchmarks.
"""

import numpy as np
import pytest

from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import ICLParadigm, RandomForestParadigm
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT4_PROFILE,
    SimulatedChatModel,
    truth_table,
)
from repro.ml.forest import RandomForestConfig


class TestSupervisedLearningAcrossTasks:
    @pytest.mark.parametrize("task", [1, 2, 3])
    def test_rf_beats_chance_on_every_task(self, lab, task):
        report, _ = lab.evaluate_random_forest(task, "W2V-Chem", "naive")
        assert report.accuracy > 0.55, f"task {task}: {report.accuracy}"

    def test_forest_importances_cover_entity_components(self, lab):
        _, forest = lab.evaluate_random_forest(1, "W2V-Chem", "naive")
        blocks = forest.component_importances(lab.embedding("W2V-Chem").dim)
        # entity blocks (subject+object) dominate over the relation block
        assert blocks[0] + blocks[2] > blocks[1]


class TestParadigmOrdering:
    def test_gpt4_beats_biogpt_head_to_head(self, lab):
        task = 1
        split = lab.ml_split(task)
        train = list(split.train)
        test = list(split.test)[:80]
        truth = truth_table(lab.dataset(task))
        scores = {}
        for profile in (GPT4_PROFILE, BIOGPT_PROFILE):
            client = SimulatedChatModel(profile, truth, task, seed=0)
            paradigm = ICLParadigm(client, seed=0).fit(train)
            scores[profile.name] = evaluate_paradigm(paradigm, test).accuracy
        assert scores["gpt-4"] > scores["biogpt"] + 0.15

    def test_trained_rf_competitive_with_random_features(self, lab):
        """Semantic embeddings should not lose badly to random ones here."""
        semantic, _ = lab.evaluate_random_forest(1, "W2V-Chem", "naive")
        random_emb, _ = lab.evaluate_random_forest(1, "Random", "none")
        assert semantic.f1 > random_emb.f1 - 0.1


class TestFineTuningIntegration:
    def test_ft_learns_task2_beyond_chance(self, lab):
        report = lab.evaluate_fine_tuned(2)
        assert report.accuracy > 0.55

    def test_ft_validation_history_recorded(self, lab):
        classifier = lab.fine_tuned(2)
        assert classifier.history
        assert "validation_accuracy" in classifier.history[-1]


class TestDeterminism:
    def test_lab_cells_are_reproducible(self, lab):
        first, _ = lab.evaluate_random_forest(1, "Random", "none")
        second, _ = lab.evaluate_random_forest(1, "Random", "none")
        assert first == second  # memoized AND deterministic

    def test_dataset_identical_across_rebuilds(self, lab):
        from repro.core.datasets import build_task_dataset

        a = build_task_dataset(lab.ontology, 1, seed=lab.config.dataset_seed)
        b = build_task_dataset(lab.ontology, 1, seed=lab.config.dataset_seed)
        assert [t.key() for t in a] == [t.key() for t in b]
