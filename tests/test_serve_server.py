"""The acceptance test: served answers == offline answers, all paradigms.

A micro lab trains all four paradigm adapters once per module; concurrent
HTTP clients then hammer the in-process server and every response must be
identical to what the same ``Curator`` computes offline — proving the
micro-batcher's coalescing and the ICL re-anchoring never change a label.
"""

import http.client
import json
import threading

import pytest

from repro.core import Lab
from repro.serve.bench import bench_lab_config
from repro.serve.curator import DEFAULT_BACKENDS, build_pool
from repro.serve.schemas import SERVE_FORMAT, triple_payload
from repro.serve.server import start_server, stop_server
from repro.serve.service import CurationService

CLIENT_THREADS = 8


@pytest.fixture(scope="module")
def serve_world():
    """Micro lab, warm four-backend pool, offline truth, live server."""
    lab = Lab(bench_lab_config(entities=120, seed=0))
    pool = build_pool(lab, DEFAULT_BACKENDS, task=1, seed=0)
    candidates = list(lab.ml_split(1).test)[:12]
    offline = {
        name: curator.classify_batch(candidates)
        for name, curator in pool.items()
    }
    service = CurationService.from_curators(
        pool, max_batch=16, max_wait_s=0.002, max_queue=512
    ).start()
    server, thread, port = start_server(service)
    try:
        yield {
            "candidates": candidates,
            "offline": offline,
            "service": service,
            "port": port,
        }
    finally:
        stop_server(server, thread)


def post_classify(port, payload):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(
            "POST",
            "/v1/classify",
            body=json.dumps(payload, sort_keys=True),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


@pytest.mark.parametrize("backend", DEFAULT_BACKENDS)
class TestServedEqualsOffline:
    def test_batch_request_matches_offline_classify_batch(
        self, serve_world, backend
    ):
        body = {
            "backend": backend,
            "triples": [triple_payload(t) for t in serve_world["candidates"]],
        }
        status, payload = post_classify(serve_world["port"], body)
        assert status == 200, payload
        assert payload["format"] == SERVE_FORMAT
        assert payload["backend"] == backend
        assert payload["labels"] == serve_world["offline"][backend]

    def test_single_triple_matches_offline_label(self, serve_world, backend):
        triple = serve_world["candidates"][0]
        status, payload = post_classify(
            serve_world["port"],
            {"backend": backend, "triple": triple_payload(triple)},
        )
        assert status == 200, payload
        assert payload["n"] == 1
        assert payload["label"] == serve_world["offline"][backend][0]

    def test_concurrent_clients_all_match_offline(self, serve_world, backend):
        """N threads, overlapping slices, coalesced batches — same labels."""
        candidates = serve_world["candidates"]
        expected = serve_world["offline"][backend]
        results = [None] * CLIENT_THREADS
        barrier = threading.Barrier(CLIENT_THREADS)

        def client(i):
            # Each client asks for a different rotation of the candidate
            # list, so coalesced batches mix differently-ordered requests.
            order = [(i + j) % len(candidates) for j in range(4)]
            barrier.wait(timeout=30)
            status, payload = post_classify(
                serve_world["port"],
                {
                    "backend": backend,
                    "triples": [triple_payload(candidates[k]) for k in order],
                },
            )
            results[i] = (status, payload, order)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(CLIENT_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert all(result is not None for result in results)
        for status, payload, order in results:
            assert status == 200, payload
            assert payload["labels"] == [expected[k] for k in order]


class TestCrossBackendTraffic:
    def test_interleaved_backends_never_cross_wires(self, serve_world):
        """Concurrent traffic to all four backends routes correctly."""
        jobs = [
            (backend, i)
            for backend in DEFAULT_BACKENDS
            for i in range(3)
        ]
        results = [None] * len(jobs)
        barrier = threading.Barrier(len(jobs))

        def client(slot, backend, offset):
            triple = serve_world["candidates"][offset]
            barrier.wait(timeout=30)
            status, payload = post_classify(
                serve_world["port"],
                {"backend": backend, "triple": triple_payload(triple)},
            )
            results[slot] = (backend, offset, status, payload)

        threads = [
            threading.Thread(target=client, args=(slot, backend, offset))
            for slot, (backend, offset) in enumerate(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for backend, offset, status, payload in results:
            assert status == 200, payload
            assert payload["backend"] == backend
            assert payload["label"] == serve_world["offline"][backend][offset]

    def test_statz_accounts_for_every_request(self, serve_world):
        before = serve_world["service"].stats.snapshot()["requests"]
        post_classify(
            serve_world["port"],
            {"triples": [triple_payload(serve_world["candidates"][0])]},
        )
        after = serve_world["service"].stats.snapshot()
        assert after["requests"] == before + 1
        assert after["shed"] == 0
        assert after["errors"] == 0
