"""Workflow-layer tests: diff lint, baselines, stale suppressions, SARIF.

The engine tests cover "does a rule fire"; this file covers how findings
move through a development workflow — `--diff` against a git ref, the
ratchet baseline, stale-suppression accounting (exit 3), and the SARIF
document CI uploads — plus the suppression-comment and astutil edge
cases (decorators, nested/async defs, lambdas, multi-rule comments,
continuation lines) those features lean on.
"""

import ast
import json
import subprocess
import textwrap

import pytest

from repro.cli import main
from repro.statcheck import (
    STALE_RULE,
    Finding,
    LintReport,
    StatcheckError,
    changed_files,
    lint_source,
    load_baseline,
    render_sarif,
    run_lint,
    split_baselined,
    write_baseline,
)
from repro.statcheck.astutil import (
    build_alias_map,
    dotted_name,
    iter_functions,
    walk_with_lock_depth,
)
from repro.statcheck.suppress import (
    parse_suppression_comments,
    parse_suppressions,
)

DET006_SNIPPET = textwrap.dedent(
    """
    import json


    def dump(payload):
        return json.dumps(payload)
    """
)

FLOW003_SNIPPET = textwrap.dedent(
    """
    from concurrent.futures import ThreadPoolExecutor


    def run(jobs):
        pool = ThreadPoolExecutor(4)
        out = [pool.submit(job) for job in jobs]
        pool.shutdown()
        return [f.result() for f in out]
    """
)


class TestSuppressionParsing:
    def test_multi_rule_comment_covers_every_listed_rule(self):
        report = lint_source(
            textwrap.dedent(
                """
                import json
                import time


                def snapshot(payload):
                    # statcheck: ignore[DET003, DET006] - display-only debug dump
                    return time.time(), json.dumps(payload)
                """
            )
        )
        assert report.findings == []
        assert sorted(f.rule for f in report.suppressed) == ["DET003", "DET006"]

    def test_directive_must_start_the_comment(self):
        # Prose *mentioning* the directive (docs, commit references) is not
        # a suppression — the pattern is anchored at the comment start.
        comments = parse_suppression_comments(
            "x = 1  # see LINTING.md on statcheck: ignore[DET001]\n"
        )
        assert comments == []

    def test_standalone_comment_covers_itself_and_next_line(self):
        comments = parse_suppression_comments(
            "# statcheck: ignore[PUR002] - justification\nwith thing():\n    pass\n"
        )
        assert len(comments) == 1
        assert comments[0].covers == (1, 2)
        assert comments[0].rules == ("PUR002",)

    def test_trailing_comment_covers_only_its_line(self):
        suppressions = parse_suppressions(
            "x = 1  # statcheck: ignore[DET001]\ny = 2\n"
        )
        assert 1 in suppressions
        assert 2 not in suppressions

    def test_comment_inside_continuation_lines_is_positional(self):
        # A suppression buried on a continuation line covers that physical
        # line, not the statement's first line — findings anchor at the
        # statement start, so the standalone-above form is the one to use.
        source = textwrap.dedent(
            """
            total = sum(
                values  # statcheck: ignore[DET001] - wrong place
            )
            """
        )
        suppressions = parse_suppressions(source)
        assert 3 in suppressions
        assert 2 not in suppressions

    def test_suppression_inside_decorated_def(self):
        report = lint_source(
            textwrap.dedent(
                """
                import functools
                import random


                @functools.lru_cache(maxsize=None)
                def pick():
                    return random.random()  # statcheck: ignore[DET001] - fixture
                """
            )
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["DET001"]


class TestAstutilEdgeCases:
    def test_iter_functions_sees_nested_and_async_defs(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def outer():
                    def inner():
                        pass
                    return inner

                class Box:
                    async def poll(self):
                        pass
                """
            )
        )
        assert {fn.name for fn in iter_functions(tree)} == {
            "outer", "inner", "poll",
        }

    def test_lock_depth_tracks_into_lambda_bodies(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def f(self):
                    with self._lock:
                        g = lambda: self._items.clear()
                    return g
                """
            )
        )
        depths = {
            node.func.attr: depth
            for node, depth in walk_with_lock_depth(tree)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        }
        assert depths["clear"] == 1

    def test_dotted_name_rejects_call_chains(self):
        expr = ast.parse("a.b().c").body[0].value
        assert dotted_name(expr) is None

    def test_function_level_imports_reach_the_alias_map(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def late():
                    import numpy as np
                    return np
                """
            )
        )
        assert build_alias_map(tree)["np"] == "numpy"


class TestStaleSuppressions:
    def test_unused_suppression_is_reported_stale(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "X = 1  # statcheck: ignore[DET001] - nothing here raises it\n"
        )
        report = run_lint([tmp_path])
        assert report.findings == []
        assert [f.rule for f in report.stale] == [STALE_RULE]
        assert "DET001" in report.stale[0].message
        assert report.ok  # stale never flips ok; the CLI maps it to exit 3

    def test_used_suppression_is_not_stale(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import random\n\n\n"
            "def pick():\n"
            "    return random.random()  # statcheck: ignore[DET001] - fixture\n"
        )
        report = run_lint([tmp_path])
        assert report.findings == []
        assert report.stale == []

    def test_flow_suppression_counts_as_used(self, tmp_path):
        source = FLOW003_SNIPPET.replace(
            "pool = ThreadPoolExecutor(4)",
            "pool = ThreadPoolExecutor(4)  "
            "# statcheck: ignore[FLOW003] - fixture",
        )
        (tmp_path / "mod.py").write_text(source)
        report = run_lint([tmp_path])
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["FLOW003"]
        assert report.stale == []

    def test_explicit_rule_subset_disables_stale_accounting(self, tmp_path):
        from repro.statcheck import select_rules

        (tmp_path / "mod.py").write_text(
            "X = 1  # statcheck: ignore[CONC002] - only DET rules run here\n"
        )
        report = run_lint([tmp_path], rules=select_rules(["determinism"]))
        assert report.stale == []


class TestFlowThroughEngine:
    def test_flow_rules_run_by_default(self, tmp_path):
        (tmp_path / "mod.py").write_text(FLOW003_SNIPPET)
        report = run_lint([tmp_path])
        assert [f.rule for f in report.findings] == ["FLOW003"]

    def test_flow_false_disables_the_pass(self, tmp_path):
        (tmp_path / "mod.py").write_text(FLOW003_SNIPPET)
        report = run_lint([tmp_path], flow=False)
        assert report.findings == []

    def test_explicit_rule_subset_skips_flow_unless_forced(self, tmp_path):
        from repro.statcheck import select_rules

        (tmp_path / "mod.py").write_text(FLOW003_SNIPPET)
        rules = select_rules(["determinism"])
        assert run_lint([tmp_path], rules=rules).findings == []
        forced = run_lint([tmp_path], rules=rules, flow=True)
        assert [f.rule for f in forced.findings] == ["FLOW003"]


def _git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True, capture_output=True, text=True,
    )


@pytest.fixture
def git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "dev@example.invalid")
    _git(tmp_path, "config", "user.name", "dev")
    (tmp_path / "a.py").write_text("A = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestChangedFiles:
    def test_modified_and_untracked_python_files(self, git_repo):
        (git_repo / "a.py").write_text("A = 2\n")
        (git_repo / "b.py").write_text("B = 1\n")
        (git_repo / "c.txt").write_text("ignored\n")
        files = changed_files("HEAD", cwd=git_repo)
        assert [path.name for path in files] == ["a.py", "b.py"]

    def test_clean_tree_yields_nothing(self, git_repo):
        assert changed_files("HEAD", cwd=git_repo) == []

    def test_unknown_ref_raises(self, git_repo):
        with pytest.raises(StatcheckError, match="bad revision"):
            changed_files("no-such-ref", cwd=git_repo)


class TestBaseline:
    def test_roundtrip_and_split(self, tmp_path):
        findings = [
            Finding("pkg/mod.py", 5, 1, "DET006", "unsorted json"),
            Finding("pkg/mod.py", 9, 1, "DET003", "wall clock"),
        ]
        path = tmp_path / "base.json"
        assert write_baseline(path, findings) == 2
        baseline = load_baseline(path)
        new = Finding("pkg/other.py", 1, 1, "DET006", "unsorted json")
        moved = Finding("pkg/mod.py", 50, 1, "DET006", "unsorted json")
        fresh, old = split_baselined([new, moved], baseline)
        assert fresh == [new]
        # Identity is (path, rule, message): line drift stays baselined.
        assert old == [moved]

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(StatcheckError, match="not a repro-statcheck"):
            load_baseline(path)


class TestSarif:
    def make_report(self):
        return LintReport(
            findings=[Finding("pkg/mod.py", 5, 3, "FLOW003", "leaked pool")],
            stale=[Finding("pkg/mod.py", 9, 1, STALE_RULE, "stale comment")],
            baselined=[Finding("pkg/old.py", 2, 1, "DET006", "legacy json")],
            n_files=2,
        )

    def test_levels_and_locations(self):
        document = render_sarif(self.make_report())
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        levels = {
            (r["ruleId"], r["level"]) for r in run["results"]
        }
        assert levels == {
            ("FLOW003", "error"),
            (STALE_RULE, "warning"),
            ("DET006", "note"),
        }
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "pkg/mod.py"
        assert location["region"] == {"startLine": 5, "startColumn": 3}

    def test_rule_metadata_covers_flow_and_engine_rules(self):
        from repro.statcheck.flow import FLOW_RULE_IDS

        document = render_sarif(LintReport())
        ids = {
            rule["id"]
            for rule in document["runs"][0]["tool"]["driver"]["rules"]
        }
        assert set(FLOW_RULE_IDS) <= ids
        assert {"SYN001", STALE_RULE} <= ids
        assert json.dumps(document, sort_keys=True)  # serialisable as-is


class TestLintCli:
    def test_findings_exit_1(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(DET006_SNIPPET)
        assert main(["lint", "bad.py"]) == 1
        assert "DET006" in capsys.readouterr().out

    def test_baseline_workflow_exits_0(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(DET006_SNIPPET)
        assert main(["lint", "bad.py", "--update-baseline"]) == 0
        assert (tmp_path / ".statcheck-baseline.json").is_file()
        assert main(["lint", "bad.py"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_stale_only_exits_3(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(
            "X = 1  # statcheck: ignore[DET001] - stale on purpose\n"
        )
        assert main(["lint", "mod.py"]) == 3
        assert STALE_RULE in capsys.readouterr().out

    def test_diff_with_clean_tree_exits_0(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        assert main(["lint", "--diff"]) == 0
        assert "no python files changed" in capsys.readouterr().out

    def test_diff_lints_only_changed_files(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        (git_repo / "b.py").write_text(DET006_SNIPPET)
        assert main(["lint", "--diff", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "DET006" in out
        assert "1 file(s)" in out

    def test_sarif_format_prints_valid_document(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(DET006_SNIPPET)
        assert main(["lint", "bad.py", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "DET006"

    def test_sarif_file_written_alongside(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(DET006_SNIPPET)
        main(["lint", "bad.py", "--sarif", "out.sarif"])
        document = json.loads((tmp_path / "out.sarif").read_text())
        assert document["runs"][0]["results"]
