"""Tests for the three task negative generators."""

import pytest

from repro.core.tasks import (
    TASKS,
    generate_task1_negatives,
    generate_task2_negatives,
    generate_task3_negatives,
    positive_triples,
    task_by_number,
)
from repro.ontology.queries import siblings
from repro.ontology.relations import IS_CONJUGATE_ACID_OF, IS_TAUTOMER_OF


class TestTaskDescriptors:
    def test_three_tasks(self):
        assert [t.number for t in TASKS] == [1, 2, 3]

    def test_lookup(self):
        assert task_by_number(2).name == "wrong-direction"
        with pytest.raises(KeyError):
            task_by_number(4)


class TestPositiveTriples:
    def test_excludes_conjugate_acid(self, ontology):
        positives = positive_triples(ontology)
        assert positives
        assert all(
            t.relation.name != IS_CONJUGATE_ACID_OF.name for t in positives
        )
        assert all(t.label == 1 for t in positives)

    def test_count_matches_statements(self, ontology):
        n_acid = sum(
            1 for s in ontology.statements()
            if s.relation.name == IS_CONJUGATE_ACID_OF.name
        )
        assert len(positive_triples(ontology)) == ontology.num_statements - n_acid

    def test_names_resolved(self, ontology):
        triple = positive_triples(ontology)[0]
        assert triple.subject_name == ontology.entity(triple.subject_id).name
        assert triple.object_name == ontology.entity(triple.object_id).name


class TestTask1:
    def test_one_negative_per_positive(self, ontology):
        positives = positive_triples(ontology)[:100]
        negatives = generate_task1_negatives(ontology, positives, seed=1)
        assert len(negatives) == len(positives)

    def test_negatives_not_in_ontology(self, ontology):
        positives = positive_triples(ontology)[:100]
        for negative in generate_task1_negatives(ontology, positives, seed=1):
            assert negative.label == 0
            assert not ontology.has_statement(
                negative.subject_id, negative.relation, negative.object_id
            )

    def test_relation_distribution_preserved(self, ontology):
        positives = positive_triples(ontology)
        negatives = generate_task1_negatives(ontology, positives, seed=1)
        pos_relations = sorted(t.relation.name for t in positives)
        neg_relations = sorted(t.relation.name for t in negatives)
        assert pos_relations == neg_relations

    def test_no_duplicate_negatives(self, ontology):
        positives = positive_triples(ontology)[:200]
        negatives = generate_task1_negatives(ontology, positives, seed=1)
        keys = [n.key() for n in negatives]
        assert len(keys) == len(set(keys))

    def test_deterministic(self, ontology):
        positives = positive_triples(ontology)[:50]
        a = generate_task1_negatives(ontology, positives, seed=9)
        b = generate_task1_negatives(ontology, positives, seed=9)
        assert [x.key() for x in a] == [x.key() for x in b]


class TestTask2:
    def test_flips_subject_and_object(self, ontology):
        positives = positive_triples(ontology)
        kept, negatives = generate_task2_negatives(ontology, positives)
        assert len(kept) == len(negatives)
        for positive, negative in zip(kept, negatives):
            assert negative.subject_id == positive.object_id
            assert negative.object_id == positive.subject_id
            assert negative.relation == positive.relation
            assert negative.label == 0

    def test_excludes_tautomer(self, ontology):
        kept, negatives = generate_task2_negatives(
            ontology, positive_triples(ontology)
        )
        assert all(t.relation.name != IS_TAUTOMER_OF.name for t in kept)

    def test_flipped_triples_are_false(self, ontology):
        _, negatives = generate_task2_negatives(ontology, positive_triples(ontology))
        for negative in negatives[:200]:
            assert not ontology.has_statement(
                negative.subject_id, negative.relation, negative.object_id
            )


class TestTask3:
    def test_object_replaced_by_sibling(self, ontology):
        positives = positive_triples(ontology)
        negatives = generate_task3_negatives(ontology, positives, seed=1)
        assert negatives
        by_key = {}
        for positive in positives:
            by_key.setdefault(
                (positive.subject_id, positive.relation.name), []
            ).append(positive)
        for negative in negatives[:150]:
            assert negative.label == 0
            candidates = by_key[(negative.subject_id, negative.relation.name)]
            # the new object must be a sibling of some original object
            assert any(
                negative.object_id in siblings(ontology, p.object_id)
                for p in candidates
            )

    def test_negatives_are_false(self, ontology):
        negatives = generate_task3_negatives(
            ontology, positive_triples(ontology), seed=1
        )
        for negative in negatives[:200]:
            assert not ontology.has_statement(
                negative.subject_id, negative.relation, negative.object_id
            )

    def test_possibly_fewer_negatives_than_positives(self, ontology):
        positives = positive_triples(ontology)
        negatives = generate_task3_negatives(ontology, positives, seed=1)
        assert 0 < len(negatives) <= len(positives)
