"""Tests for the synthetic ChEBI-like generator."""

import numpy as np
import pytest

from repro.ontology.model import SubOntology
from repro.ontology.queries import is_dag, siblings
from repro.ontology.relations import ALL_RELATIONS, IS_A
from repro.ontology.statistics import census
from repro.ontology.synthesis import (
    CHEMICAL_ROOT_CLASSES,
    SynthesisConfig,
    _conjugate_base_name,
    synthesize_chebi_like,
)
from repro.text.tokenizer import ChemTokenizer


class TestSynthesisConfig:
    def test_rejects_too_few_entities(self):
        with pytest.raises(ValueError, match="exceed"):
            SynthesisConfig(n_chemical_entities=10)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            SynthesisConfig(compositional_fraction=1.5)
        with pytest.raises(ValueError):
            SynthesisConfig(extra_parent_probability=-0.1)

    def test_rejects_shallow_depth(self):
        with pytest.raises(ValueError):
            SynthesisConfig(max_depth=1)


class TestGeneratedOntology:
    def test_three_sub_ontologies_present(self, ontology):
        counts = census(ontology).entities_by_sub_ontology
        assert counts[SubOntology.CHEMICAL.value] > 300
        assert counts[SubOntology.ROLE.value] >= 30
        assert counts[SubOntology.SUBATOMIC.value] >= 10

    def test_all_ten_relations_present(self, ontology):
        present = set(census(ontology).statements_by_relation)
        assert present == {r.name for r in ALL_RELATIONS}

    def test_is_a_dominates(self, ontology):
        shares = census(ontology).relation_shares()
        assert next(iter(shares)) == "is_a"
        assert shares["is_a"] > 0.5

    def test_is_a_is_dag(self, ontology):
        assert is_dag(ontology)

    def test_deterministic(self):
        config = SynthesisConfig(n_chemical_entities=120, seed=9)
        first = synthesize_chebi_like(config)
        second = synthesize_chebi_like(config)
        assert [e.name for e in first.entities()] == [
            e.name for e in second.entities()
        ]
        assert first.num_statements == second.num_statements

    def test_different_seeds_differ(self):
        a = synthesize_chebi_like(SynthesisConfig(n_chemical_entities=120, seed=1))
        b = synthesize_chebi_like(SynthesisConfig(n_chemical_entities=120, seed=2))
        assert {e.name for e in a.entities()} != {e.name for e in b.entities()}

    def test_entity_names_unique(self, ontology):
        names = [e.name for e in ontology.entities()]
        assert len(names) == len(set(names))

    def test_siblings_exist_for_task3(self, ontology):
        """Task 3 needs sibling entities; most is_a objects should have some."""
        objects = [s.object for s in ontology.statements(IS_A)]
        with_siblings = sum(1 for o in objects[:200] if siblings(ontology, o))
        assert with_siblings > 100

    def test_token_pathology_short_tokens_in_heads(self, ontology):
        """Head names should contain many short locant tokens (Table A5)."""
        tokenizer = ChemTokenizer()
        short = total = 0
        for statement in ontology.statements(IS_A):
            for token in tokenizer(ontology.entity(statement.subject).name):
                total += 1
                short += len(token) <= 2
        assert short / total > 0.15

    def test_conjugate_base_name(self):
        assert _conjugate_base_name("butanoic acid") == "butanoate"
        assert _conjugate_base_name("weird acid") == "weird acid(1-)"

    def test_root_classes_exist(self, ontology):
        names = {e.name for e in ontology.entities()}
        for class_name in CHEMICAL_ROOT_CLASSES[:5]:
            assert class_name in names
