"""Tests for the OBO parser/writer round-trip."""

import io

import pytest

from repro.ontology.model import Entity, Ontology, SubOntology
from repro.ontology.obo import OboParseError, dump_obo, dumps_obo, load_obo
from repro.ontology.relations import HAS_ROLE, IS_A

SAMPLE = """format-version: 1.2
ontology: chebi-sample

[Term]
id: CHEBI:1
name: chemical entity
namespace: chemical_entity

[Term]
id: CHEBI:2
name: butanoic acid
namespace: chemical_entity
def: "A short-chain fatty acid." []
synonym: "butyric acid" RELATED []
is_a: CHEBI:1

[Term]
id: CHEBI:3
name: metabolite
namespace: role

[Term]
id: CHEBI:4
name: 3-hydroxybutanoic acid
namespace: chemical_entity
is_a: CHEBI:2 ! a comment
relationship: has_role CHEBI:3

[Term]
id: CHEBI:5
name: obsolete thing
is_obsolete: true
"""


class TestLoadObo:
    def test_entities_parsed(self):
        onto = load_obo(io.StringIO(SAMPLE))
        assert onto.num_entities == 4  # obsolete term skipped
        assert onto.entity("CHEBI:2").name == "butanoic acid"
        assert onto.entity("CHEBI:3").sub_ontology is SubOntology.ROLE

    def test_def_and_synonyms(self):
        onto = load_obo(io.StringIO(SAMPLE))
        entity = onto.entity("CHEBI:2")
        assert entity.definition == "A short-chain fatty acid."
        assert entity.synonyms == ("butyric acid",)

    def test_statements_parsed_with_comments_stripped(self):
        onto = load_obo(io.StringIO(SAMPLE))
        assert onto.has_statement("CHEBI:4", IS_A, "CHEBI:2")
        assert onto.has_statement("CHEBI:4", HAS_ROLE, "CHEBI:3")

    def test_missing_target_raises(self):
        bad = "[Term]\nid: A:1\nname: x\nis_a: A:9\n"
        with pytest.raises(KeyError):
            load_obo(io.StringIO(bad))

    def test_cycle_rejected(self):
        bad = (
            "[Term]\nid: A:1\nname: x\nis_a: A:2\n\n"
            "[Term]\nid: A:2\nname: y\nis_a: A:1\n"
        )
        with pytest.raises(OboParseError, match="cycle"):
            load_obo(io.StringIO(bad))

    def test_malformed_line_raises(self):
        bad = "[Term]\nid: A:1\nname: x\nrelationship: only_one_part\n"
        with pytest.raises(OboParseError, match="relationship"):
            load_obo(io.StringIO(bad))

    def test_term_without_name_raises(self):
        bad = "[Term]\nid: A:1\n"
        with pytest.raises(OboParseError, match="missing"):
            load_obo(io.StringIO(bad))

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "sample.obo"
        path.write_text(SAMPLE)
        onto = load_obo(path)
        assert onto.num_entities == 4


class TestRoundTrip:
    def test_dump_then_load_preserves_everything(self):
        original = load_obo(io.StringIO(SAMPLE), name="x")
        text = dumps_obo(original)
        reloaded = load_obo(io.StringIO(text), name="x")
        assert reloaded.num_entities == original.num_entities
        assert reloaded.num_statements == original.num_statements
        for entity in original.entities():
            copy = reloaded.entity(entity.identifier)
            assert copy == entity

    def test_quotes_escaped(self):
        onto = Ontology("q")
        onto.add_entity(
            Entity("E:1", "thing", definition='contains "quotes" and \\ slash')
        )
        reloaded = load_obo(io.StringIO(dumps_obo(onto)))
        assert reloaded.entity("E:1").definition == 'contains "quotes" and \\ slash'

    def test_synthetic_ontology_round_trips(self, ontology):
        text = dumps_obo(ontology)
        reloaded = load_obo(io.StringIO(text))
        assert reloaded.num_entities == ontology.num_entities
        assert reloaded.num_statements == ontology.num_statements

    def test_dump_to_path(self, tmp_path, ontology):
        path = tmp_path / "out.obo"
        dump_obo(ontology, path)
        assert load_obo(path).num_entities == ontology.num_entities
