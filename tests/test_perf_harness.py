"""Tests for the benchmark timing harness (repro.perf.harness)."""

import pytest

from repro.perf.harness import (
    FULL,
    QUICK,
    Benchmark,
    PerfError,
    Protocol,
    Stats,
    percentile,
)


class TestProtocol:
    def test_defaults_are_full(self):
        assert Protocol() == FULL
        assert FULL.warmup == 2 and FULL.repeats == 7

    def test_quick_shrinks_protocol_only(self):
        assert QUICK.warmup < FULL.warmup
        assert QUICK.repeats < FULL.repeats
        assert QUICK.repeats >= 1

    def test_rejects_zero_repeats(self):
        with pytest.raises(PerfError, match="repeats"):
            Protocol(warmup=1, repeats=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(PerfError, match="warmup"):
            Protocol(warmup=-1, repeats=1)

    def test_zero_warmup_allowed(self):
        assert Protocol(warmup=0, repeats=1).warmup == 0

    def test_to_dict(self):
        assert Protocol(1, 3).to_dict() == {"warmup": 1, "repeats": 3}


class TestPercentile:
    def test_single_sample(self):
        assert percentile([4.2], 99) == 4.2

    def test_endpoints(self):
        samples = [3.0, 1.0, 2.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 3.0

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(PerfError):
            percentile([], 50)


class TestStats:
    def test_robust_summary(self):
        stats = Stats(samples=(1.0, 2.0, 3.0, 4.0, 100.0))
        assert stats.n == 5
        assert stats.median == 3.0
        assert stats.min == 1.0
        assert stats.max == 100.0
        # the outlier moves the mean but not the median / MAD
        assert stats.mean > stats.median
        assert stats.mad == 1.0

    def test_single_sample_degenerates_gracefully(self):
        stats = Stats(samples=(0.5,))
        assert stats.stdev == 0.0
        assert stats.mad == 0.0
        assert stats.p99 == 0.5

    def test_empty_rejected(self):
        with pytest.raises(PerfError):
            Stats(samples=())

    def test_to_dict_rounds_to_microseconds(self):
        payload = Stats(samples=(0.1234567891,)).to_dict()
        assert payload["median_s"] == 0.123457
        assert payload["samples_s"] == [0.123457]
        assert payload["n"] == 1


class TestBenchmark:
    def test_measure_runs_protocol(self):
        calls = []

        bench = Benchmark("toy", run=lambda state: calls.append(1) or 7)
        result = bench.measure(Protocol(warmup=2, repeats=3))
        assert len(calls) == 5  # warmup + repeats
        assert result.stats.n == 3
        assert result.deterministic is True
        assert result.name == "toy"

    def test_setup_once_teardown_once(self):
        events = []

        bench = Benchmark(
            "toy",
            run=lambda state: state["n"],
            setup=lambda: events.append("setup") or {"n": 1},
            teardown=lambda state: events.append("teardown"),
        )
        bench.measure(Protocol(warmup=1, repeats=4))
        assert events == ["setup", "teardown"]

    def test_teardown_runs_when_run_raises(self):
        events = []

        def boom(state):
            raise RuntimeError("workload broke")

        bench = Benchmark(
            "toy",
            run=boom,
            setup=lambda: {},
            teardown=lambda state: events.append("teardown"),
        )
        with pytest.raises(RuntimeError):
            bench.measure(Protocol(warmup=0, repeats=1))
        assert events == ["teardown"]

    def test_nondeterministic_workload_flagged(self):
        counter = iter(range(100))

        bench = Benchmark("drifty", run=lambda state: next(counter))
        result = bench.measure(Protocol(warmup=1, repeats=2))
        assert result.deterministic is False

    def test_rate_from_units(self):
        bench = Benchmark("toy", run=lambda state: 1, units=1000.0)
        result = bench.measure(Protocol(warmup=0, repeats=2))
        assert result.rate is not None and result.rate > 0
        assert result.to_dict()["units"] == 1000.0

    def test_to_dict_shape(self):
        result = Benchmark("toy", run=lambda state: 1).measure(
            Protocol(warmup=0, repeats=1)
        )
        payload = result.to_dict()
        assert set(payload) == {
            "name", "protocol", "stats", "checksum", "deterministic",
        }
        assert payload["checksum"]
