"""Tests for the synthetic corpus generators."""

import pytest

from repro.ontology.relations import ALL_RELATIONS
from repro.text.corpus import (
    RELATION_TEMPLATES,
    CorpusConfig,
    corpus_sentences,
    generate_chemistry_corpus,
    generate_generic_corpus,
)


class TestCorpusConfig:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_documents=0)
        with pytest.raises(ValueError):
            CorpusConfig(triple_sentence_fraction=1.5)
        with pytest.raises(ValueError):
            CorpusConfig(statement_coverage=0.0)


class TestTemplates:
    def test_every_relation_has_templates(self):
        for relation in ALL_RELATIONS:
            templates = RELATION_TEMPLATES[relation.name]
            assert templates
            for template in templates:
                assert "{s}" in template and "{o}" in template


class TestChemistryCorpus:
    def test_shape(self, ontology):
        config = CorpusConfig(n_documents=5, sentences_per_document=7, seed=1)
        documents = generate_chemistry_corpus(ontology, config)
        assert len(documents) == 5
        assert all(len(doc) == 7 for doc in documents)

    def test_deterministic(self, ontology):
        config = CorpusConfig(n_documents=3, sentences_per_document=5, seed=2)
        assert generate_chemistry_corpus(ontology, config) == generate_chemistry_corpus(
            ontology, config
        )

    def test_sentences_are_tokenised(self, ontology):
        config = CorpusConfig(n_documents=2, sentences_per_document=4, seed=3)
        for doc in generate_chemistry_corpus(ontology, config):
            for sentence in doc:
                assert sentence == sentence.lower()
                assert "(" not in sentence

    def test_mentions_ontology_tokens(self, ontology):
        config = CorpusConfig(n_documents=10, sentences_per_document=10, seed=4)
        text = " ".join(
            s for doc in generate_chemistry_corpus(ontology, config) for s in doc
        )
        assert "acid" in text or "role" in text

    def test_coverage_reduces_vocabulary(self, ontology):
        full = CorpusConfig(n_documents=30, sentences_per_document=10,
                            statement_coverage=1.0, seed=5)
        partial = CorpusConfig(n_documents=30, sentences_per_document=10,
                               statement_coverage=0.2, seed=5)
        vocab_full = {
            t for s in corpus_sentences(generate_chemistry_corpus(ontology, full))
            for t in s
        }
        vocab_partial = {
            t for s in corpus_sentences(generate_chemistry_corpus(ontology, partial))
            for t in s
        }
        assert len(vocab_partial) < len(vocab_full)


class TestGenericCorpus:
    def test_mostly_generic_at_low_fraction(self, ontology):
        config = CorpusConfig(n_documents=20, sentences_per_document=10, seed=6)
        documents = generate_generic_corpus(ontology, config, chemistry_fraction=0.0)
        text = " ".join(s for doc in documents for s in doc)
        assert "government" in text or "people" in text or "market" in text

    def test_invalid_fraction(self, ontology):
        with pytest.raises(ValueError):
            generate_generic_corpus(ontology, chemistry_fraction=1.2)

    def test_corpus_sentences_flattens(self, ontology):
        config = CorpusConfig(n_documents=3, sentences_per_document=4, seed=7)
        documents = generate_generic_corpus(ontology, config)
        sentences = corpus_sentences(documents)
        assert len(sentences) == 12
        assert all(isinstance(s, list) for s in sentences)
