"""Table 2 — dataset statistics for the three curation tasks.

Paper (ChEBI Feb-2022, 310k positives per task):

    task 1: 310,193 + / 310,193 -   (620,386 total)
    task 2: 305,715 + / 305,715 -   (611,430)
    task 3: 310,193 + / 307,188 -   (617,381)

Shape targets on the synthetic ontology: task 1 exactly balanced; task 2
slightly smaller than task 1 (symmetric is_tautomer_of positives dropped);
task 3 with slightly fewer negatives than positives (objects without
siblings).  Splits are stratified 9:1.
"""

import os

from conftest import instrumented, run_once

from repro.core.datasets import train_test_split_9_1
from repro.core.reporting import Table

PAPER = {
    1: (310_193, 310_193),
    2: (305_715, 305_715),
    3: (310_193, 307_188),
}


@instrumented("table2_datasets")
def compute(lab):
    rows = []
    for task in (1, 2, 3):
        dataset = lab.dataset(task)
        split = train_test_split_9_1(dataset, seed=lab.config.seed)
        n_pos, n_neg = dataset.counts()
        train_pos, train_neg = split.train.counts()
        test_pos, test_neg = split.test.counts()
        rows.append(
            (task, n_pos, n_neg, train_pos, train_neg, test_pos, test_neg)
        )
    return rows


def test_table2_dataset_statistics(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    table = Table(
        "Table 2 — dataset statistics (paper counts vs synthetic counts)",
        [
            "task", "paper +", "paper -", "ours +", "ours -",
            "train +", "train -", "test +", "test -",
        ],
        precision=0,
    )
    for task, n_pos, n_neg, tr_pos, tr_neg, te_pos, te_neg in rows:
        paper_pos, paper_neg = PAPER[task]
        table.add_row(
            f"task {task}", paper_pos, paper_neg, n_pos, n_neg,
            tr_pos, tr_neg, te_pos, te_neg,
        )
    table.show()
    table.save(os.path.join(results_dir, "table2_datasets.txt"))

    by_task = {row[0]: row for row in rows}
    # Shape assertions mirroring the paper's construction.
    assert by_task[1][1] == by_task[1][2], "task 1 must be exactly balanced"
    assert by_task[2][1] <= by_task[1][1], "task 2 drops tautomer positives"
    assert by_task[3][2] <= by_task[3][1], "task 3 cannot exceed positives"
