"""Tables A1/A3 — ontology census: sub-ontology sizes, relationship counts.

Paper (ChEBI Feb-2022): 147,461 entities — 145,869 chemical, 1,550 role, 42
subatomic; 318,438 triples with is_a at 72.3%, has_role 13.2%,
has_functional_parent 5.7%.  The synthetic generator must reproduce the
*profile* (shares), not the absolute counts.
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table
from repro.ontology.statistics import (
    CHEBI_REFERENCE_ENTITY_COUNTS,
    CHEBI_REFERENCE_RELATION_COUNTS,
    census,
)


@instrumented("tableA3_ontology_stats")
def compute(lab):
    return census(lab.ontology)


def test_tableA3_ontology_census(lab, results_dir, benchmark):
    result = run_once(benchmark, compute, lab)

    entity_table = Table(
        "Table A1 — entities per sub-ontology (paper vs synthetic)",
        ["sub-ontology", "paper", "ours"],
        precision=0,
    )
    for name, paper_count in CHEBI_REFERENCE_ENTITY_COUNTS.items():
        entity_table.add_row(
            name, paper_count, result.entities_by_sub_ontology.get(name, 0)
        )
    entity_table.show()

    paper_total = sum(CHEBI_REFERENCE_RELATION_COUNTS.values())
    relation_table = Table(
        "Table A3 — triples per relationship (shares; paper vs synthetic)",
        ["relation", "paper count", "paper share", "ours count", "ours share"],
        precision=3,
    )
    shares = result.relation_shares()
    for name, paper_count in sorted(
        CHEBI_REFERENCE_RELATION_COUNTS.items(), key=lambda kv: -kv[1]
    ):
        relation_table.add_row(
            name,
            paper_count,
            paper_count / paper_total,
            result.statements_by_relation.get(name, 0),
            shares.get(name, 0.0),
        )
    text = relation_table.show()
    relation_table.save(os.path.join(results_dir, "tableA3_ontology_stats.txt"))
    with open(
        os.path.join(results_dir, "tableA1_entities.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(entity_table.render() + "\n")

    # Profile assertions: is_a dominates with a ChEBI-like share; the top-3
    # relations cover > 85% of triples as in the paper (> 90% there).
    assert 0.60 <= shares["is_a"] <= 0.85
    top3 = sum(share for _, share in list(shares.items())[:3])
    assert top3 > 0.8
    # Chemical entities dominate the entity census.
    chemical = result.entities_by_sub_ontology["chemical_entity"]
    assert chemical / result.total_entities > 0.9
