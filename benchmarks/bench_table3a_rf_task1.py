"""Table 3a — Random Forest on task 1: six embeddings x three adaptations.

Paper F1 scores (279k training triples):

    embedding    none    naive   task-oriented
    Random       .9559   .9574   -
    GloVe        .9081   .9538   .9605
    W2V-Chem     .9158   .9690   .9589
    GloVe-Chem   .9189   .9683   .9196
    BioWordVec   .9299   .9675   .9673
    PubmedBERT   .9354   -       -

Shape targets at reduced scale: adaptations help the semantic embeddings;
the chem-corpus models (W2V-Chem / GloVe-Chem) are among the best; the
Random-beats-semantic inversion in the *none* column is a large-training-set
memorisation effect (see the paper's Figure 3 and this repo's
bench_ablation_random_vs_semantic.py) and is not expected to reproduce at
this scale.
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table

PAPER_F1 = {
    ("Random", "none"): 0.9559,
    ("Random", "naive"): 0.9574,
    ("GloVe", "none"): 0.9081,
    ("GloVe", "naive"): 0.9538,
    ("GloVe", "task-oriented"): 0.9605,
    ("W2V-Chem", "none"): 0.9158,
    ("W2V-Chem", "naive"): 0.9690,
    ("W2V-Chem", "task-oriented"): 0.9589,
    ("GloVe-Chem", "none"): 0.9189,
    ("GloVe-Chem", "naive"): 0.9683,
    ("GloVe-Chem", "task-oriented"): 0.9196,
    ("BioWordVec", "none"): 0.9299,
    ("BioWordVec", "naive"): 0.9675,
    ("BioWordVec", "task-oriented"): 0.9673,
    ("PubmedBERT", "none"): 0.9354,
}

#: The cells the paper evaluates (PubmedBERT gets no token adaptations; the
#: random model has no task-oriented variant).
CELLS = list(PAPER_F1)


@instrumented("table3a_rf_task1")
def compute(lab):
    results = {}
    for embedding_name, adaptation in CELLS:
        report, _ = lab.evaluate_random_forest(1, embedding_name, adaptation)
        results[(embedding_name, adaptation)] = report
    return results


def test_table3a_random_forest_task1(lab, results_dir, benchmark):
    results = run_once(benchmark, compute, lab)
    table = Table(
        "Table 3a — RF on task 1 (P/R/F1 per adaptation; paper F1 alongside)",
        ["embedding", "adaptation", "precision", "recall", "F1", "paper F1"],
    )
    for (embedding_name, adaptation), report in results.items():
        table.add_row(
            embedding_name,
            adaptation,
            report.precision,
            report.recall,
            report.f1,
            PAPER_F1[(embedding_name, adaptation)],
        )
    table.show()
    table.save(os.path.join(results_dir, "table3a_rf_task1.txt"))

    f1 = {cell: report.f1 for cell, report in results.items()}
    # Everything must beat chance comfortably.
    assert all(value > 0.55 for value in f1.values())
    # Chem-corpus embeddings with adaptation are among the strongest cells.
    best = max(f1.values())
    assert max(f1[("W2V-Chem", "naive")], f1[("GloVe-Chem", "naive")]) >= best - 0.08
