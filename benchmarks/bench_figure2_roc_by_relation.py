"""Figure 2 — ROC-AUC broken down by relationship type, tasks 1-3.

The paper plots per-relationship ROC-AUC for Random Forests with naive
adaptation.  Qualitative findings it reports:

* task 1: the chem-corpus embeddings (W2V-Chem, GloVe-Chem, BioWordVec)
  are consistently strong across relationship types;
* task 2: PubmedBERT embeddings dominate; ``is_conjugate_base_of`` and
  ``has_part`` are weak spots for the static models;
* task 3: ``is_enantiomer_of``, ``is_conjugate_base_of`` and
  ``is_substituent_group_from`` are hard for every model.

This bench regenerates the full (task x embedding x relation) AUC grid.
Relations with too few test triples (or a single class) are skipped, as a
plot would skip them.
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table
from repro.metrics.roc import roc_auc_score

EMBEDDINGS = ("Random", "GloVe", "W2V-Chem", "GloVe-Chem", "BioWordVec", "PubmedBERT")
MIN_TRIPLES = 12


@instrumented("figure2_roc_by_relation")
def compute(lab):
    grid = {}
    for task in (1, 2, 3):
        split = lab.ml_split(task)
        relations = sorted({t.relation.name for t in split.test})
        for embedding_name in EMBEDDINGS:
            adaptation = "none" if embedding_name == "PubmedBERT" else "naive"
            extractor, forest = lab.trained_forest(task, embedding_name, adaptation)
            for relation in relations:
                subset = [t for t in split.test if t.relation.name == relation]
                labels = [t.label for t in subset]
                if len(subset) < MIN_TRIPLES or len(set(labels)) < 2:
                    continue
                scores = forest.predict_proba(extractor.matrix(subset))
                grid[(task, embedding_name, relation)] = roc_auc_score(
                    labels, scores
                )
    return grid


def test_figure2_roc_auc_by_relation(lab, results_dir, benchmark):
    grid = run_once(benchmark, compute, lab)
    relations = sorted({key[2] for key in grid})
    for task in (1, 2, 3):
        table = Table(
            f"Figure 2 (task {task}) — ROC-AUC by relationship type",
            ["relation"] + list(EMBEDDINGS),
            precision=3,
        )
        for relation in relations:
            cells = [
                grid.get((task, embedding_name, relation))
                for embedding_name in EMBEDDINGS
            ]
            if all(c is None for c in cells):
                continue
            table.add_row(relation, *cells)
        table.show()
        table.save(
            os.path.join(results_dir, f"figure2_task{task}_roc_by_relation.txt")
        )

    # Sanity: the dominant relation (is_a) must be scored for every model,
    # and mean AUC must beat chance on every task.
    for task in (1, 2, 3):
        for embedding_name in EMBEDDINGS:
            assert (task, embedding_name, "is_a") in grid
        values = [v for (t, _, _), v in grid.items() if t == task]
        assert sum(values) / len(values) > 0.6
