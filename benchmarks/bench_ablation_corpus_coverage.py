"""Ablation — embedding quality vs corpus statement coverage.

A design-choice check called out in DESIGN.md: the chemistry corpus only
verbalises a fraction of the ontology's statements (real literature does
not state every ChEBI fact).  Higher coverage should yield better W2V-Chem
forests on task 1, because more of the test triples' distributional signal
is available at embedding-training time.
"""

import os

from conftest import instrumented, run_once

from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import RandomForestParadigm
from repro.core.reporting import Table
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.ml.forest import RandomForestConfig
from repro.text.corpus import CorpusConfig, corpus_sentences, generate_chemistry_corpus

COVERAGES = (0.15, 0.5, 1.0)


@instrumented("ablation_corpus_coverage")
def compute(lab):
    split = lab.ml_split(1)
    train = list(split.train)[:1_500]
    test = list(split.test)
    rows = {}
    for coverage in COVERAGES:
        documents = generate_chemistry_corpus(
            lab.ontology,
            CorpusConfig(
                n_documents=lab.config.corpus_documents,
                sentences_per_document=lab.config.corpus_sentences,
                statement_coverage=coverage,
                seed=lab.config.corpus_seed,
            ),
        )
        embeddings = Word2Vec.train(
            corpus_sentences(documents),
            Word2VecConfig(
                dim=lab.config.embedding_dim,
                epochs=lab.config.embedding_epochs,
                seed=lab.config.seed,
            ),
            name=f"W2V@{coverage}",
        )
        paradigm = RandomForestParadigm(
            embeddings,
            config=RandomForestConfig(n_estimators=20, seed=lab.config.seed),
        ).fit(train)
        rows[coverage] = evaluate_paradigm(paradigm, test).f1
    return rows


def test_ablation_corpus_coverage(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    table = Table(
        "Ablation — task-1 RF F1 vs chemistry-corpus statement coverage",
        ["coverage", "F1"],
        precision=3,
    )
    for coverage in COVERAGES:
        table.add_row(coverage, rows[coverage])
    table.show()
    table.save(os.path.join(results_dir, "ablation_corpus_coverage.txt"))

    # Full coverage must beat the starved corpus.
    assert rows[1.0] > rows[COVERAGES[0]] - 0.02
