"""Table 5 — in-context learning: 3 models x 3 prompt variants x 3 tasks.

Paper headline numbers (accuracy mean / F1 mean / kappa), variant #1:

    task 1: GPT-4 .916/.904/.98   GPT-3.5 .804/.780/1.00   BioGPT .460/.073/.07
    task 2: GPT-4 .766/.767/.92   GPT-3.5 .674/.693/.97    BioGPT .304/.066/.06
    task 3: GPT-4 .874/.860/.94   GPT-3.5 .718/.643/.97    BioGPT .450/.115/.01

Shape targets: GPT-4 > GPT-3.5 >> BioGPT everywhere; variant #2 ("I don't
know") produces unclassified responses and lowers overall accuracy while
keeping classified-only F1 high; variant #3 (shuffled examples) rescues
BioGPT's recall and is GPT-4's best formulation overall; GPT kappas are
high, BioGPT's near zero.
"""

import os

from conftest import icl_resilience, instrumented, run_once

from repro.core.datasets import train_test_split_9_1
from repro.core.reporting import Table
from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT35_PROFILE,
    GPT4_PROFILE,
    SimulatedChatModel,
    truth_table,
)

PROFILES = (GPT4_PROFILE, GPT35_PROFILE, BIOGPT_PROFILE)

#: Paper variant-#1 (accuracy, F1, kappa) for the side-by-side columns.
PAPER_V1 = {
    ("gpt-4", 1): (0.916, 0.904, 0.98),
    ("gpt-4", 2): (0.766, 0.767, 0.92),
    ("gpt-4", 3): (0.874, 0.860, 0.94),
    ("gpt-3.5-turbo", 1): (0.804, 0.780, 1.00),
    ("gpt-3.5-turbo", 2): (0.674, 0.693, 0.97),
    ("gpt-3.5-turbo", 3): (0.718, 0.643, 0.97),
    ("biogpt", 1): (0.460, 0.073, 0.07),
    ("biogpt", 2): (0.304, 0.066, 0.06),
    ("biogpt", 3): (0.450, 0.115, 0.01),
}


@instrumented("table5_icl")
def compute(lab):
    config = ICLConfig(seed=lab.config.seed)
    results = {}
    for task in (1, 2, 3):
        dataset = lab.dataset(task)
        split = train_test_split_9_1(dataset, seed=lab.config.seed)
        queries = build_icl_queries(dataset, config)
        truth = truth_table(dataset)
        for profile in PROFILES:
            for variant in PromptVariant:
                client = SimulatedChatModel(
                    profile, truth, task, seed=lab.config.seed
                )
                # Optional fault injection / checkpointing via REPRO_FAULTS
                # and REPRO_JOURNAL_DIR; no-op in a plain benchmark run.
                wrap, retry, journal = icl_resilience(
                    f"table5_t{task}_{profile.name}_v{variant.value}"
                )
                results[(task, profile.name, variant)] = run_icl_experiment(
                    wrap(client), list(split.train), queries, variant, config,
                    retry=retry, journal=journal,
                )
    return results


def test_table5_icl_three_models(lab, results_dir, benchmark):
    results = run_once(benchmark, compute, lab)
    table = Table(
        "Table 5 — ICL (simulated LLMs); paper variant-#1 acc/F1 alongside",
        ["task", "model", "variant", "accuracy", "unclassified",
         "precision", "recall", "F1", "kappa", "paper acc", "paper F1"],
        precision=3,
    )
    for (task, model, variant), result in sorted(
        results.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2].value)
    ):
        paper = PAPER_V1[(model, task)] if variant is PromptVariant.BASE else None
        table.add_row(
            task, model, f"#{variant.value}", result.accuracy_mean,
            result.n_unclassified, result.precision_mean, result.recall_mean,
            result.f1_mean, result.kappa,
            paper[0] if paper else None, paper[1] if paper else None,
        )
    table.show()
    table.save(os.path.join(results_dir, "table5_icl.txt"))

    for task in (1, 2, 3):
        base = {
            model: results[(task, model, PromptVariant.BASE)]
            for model in ("gpt-4", "gpt-3.5-turbo", "biogpt")
        }
        # Model ordering: GPT-4 > GPT-3.5 >> BioGPT.
        assert base["gpt-4"].accuracy_mean > base["biogpt"].accuracy_mean + 0.2
        assert base["gpt-4"].accuracy_mean >= base["gpt-3.5-turbo"].accuracy_mean - 0.03
        # BioGPT: near-random, inconsistent, recall-starved under ordering #1.
        assert base["biogpt"].kappa < 0.45
        assert base["biogpt"].recall_mean < 0.35
        # Variant #2 produces unclassified responses for the GPT models.
        abstain = results[(task, "gpt-4", PromptVariant.ABSTAIN)]
        assert abstain.n_unclassified > 0
        # Shuffled ordering rescues BioGPT's recall.
        shuffled = results[(task, "biogpt", PromptVariant.SHUFFLED)]
        assert shuffled.recall_mean > base["biogpt"].recall_mean
