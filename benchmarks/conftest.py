"""Shared benchmark fixtures.

One bench-scale Lab is built per session and shared by every table/figure
benchmark; expensive artefacts (embeddings, BERT, trained forests) are
cached inside it.  Rendered tables are written to ``benchmarks/results/``.

Scale: the paper's datasets hold ~620k triples and its forests train for
hours; this harness runs the identical pipelines on a ~2,000-entity
synthetic ontology with capped splits, so absolute scores are lower.  Every
benchmark prints the paper's reported value next to the measured one — the
reproduction target is the *shape* (orderings, gaps, crossovers).
"""

import functools
import os

import pytest

from repro import obs
from repro.core import Lab, LabConfig
from repro.obs.trace import env_enables_trace
from repro.perf import profiler

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BENCH_LAB_CONFIG = LabConfig(
    n_chemical_entities=2_000,
    ontology_seed=7,
    corpus_documents=250,
    corpus_sentences=25,
    statement_coverage=0.55,
    embedding_dim=64,
    embedding_epochs=3,
    glove_epochs=10,
    wordpiece_vocab=900,
    bert_d_model=64,
    bert_layers=4,
    bert_heads=4,
    bert_d_ff=128,
    pretrain_epochs=3,
    pretrain_sentences=2_500,
    dataset_seed=42,
    max_train=3_000,
    max_test=800,
    rf_estimators=30,
    rf_max_depth=16,
    lstm_hidden=32,
    lstm_epochs=5,
    ft_epochs=6,
    ft_learning_rate=1e-3,
    seed=0,
)


@pytest.fixture(scope="session", autouse=True)
def _observability():
    """Collect spans for every benchmark run so each saved table ships with
    a ``*.manifest.json`` (stderr progress only when ``REPRO_TRACE`` asks).

    With ``REPRO_PROFILE=1`` the span profiler is installed too, so every
    manifest additionally carries ``hotspots.functions`` /
    ``hotspots.allocations`` next to the always-present
    ``hotspots.slowest_stages`` ranking."""
    obs.enable(verbose=env_enables_trace())
    profiler.configure_from_env()
    yield


def instrumented(label):
    """Decorate a benchmark ``compute`` so it runs inside a ``bench.<label>``
    span.

    The span makes the benchmark's own work a first-class stage in its
    manifest — ranked by ``repro trace --slowest``, and profiled
    (cProfile + tracemalloc) whenever ``REPRO_PROFILE=1``."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with profiler.profiled_span(f"bench.{label}", benchmark=label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@pytest.fixture(scope="session")
def lab():
    lab = Lab(BENCH_LAB_CONFIG)
    # Warm the shared apparatus up front (unless opted out) so every
    # benchmark's manifest carries the full stage span tree — ontology,
    # corpora, embedding training, BERT and one classifier fit — and so
    # per-benchmark timings measure the benchmark, not lazy Lab builds.
    # With $REPRO_ARTIFACTS (or LabConfig.artifact_dir) set, warming fills
    # the persistent artifact store, so a second benchmark run loads every
    # substrate instead of rebuilding it.
    if os.environ.get("REPRO_BENCH_NO_WARM", "") not in ("1", "true", "yes"):
        lab.warm()  # ontology + corpora + wordpiece + BERT + embeddings + splits
        lab.trained_forest(1, "W2V-Chem", "naive")
    return lab


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


def icl_resilience(label):
    """Resilience knobs for an ICL benchmark, from the environment.

    Returns ``(wrap, retry, journal)``:

    * ``wrap(client)`` — identity, unless ``REPRO_FAULTS`` holds a fault
      spec (e.g. ``timeout:0.1,http500:0.05``), in which case the client is
      wrapped in a deterministic :class:`~repro.resilience.faults.FaultyClient`;
    * ``retry`` — a :class:`~repro.resilience.retry.RetryPolicy` on a
      virtual clock when faults are active (backoff costs no wall time),
      else ``None``;
    * ``journal`` — ``$REPRO_JOURNAL_DIR/<label>.journal.jsonl`` when
      ``REPRO_JOURNAL_DIR`` is set, else ``None``.

    With neither variable set this is a no-op, so plain benchmark runs are
    untouched; CI sets them to prove tables survive injected faults.
    """
    faults = os.environ.get("REPRO_FAULTS", "")
    journal_dir = os.environ.get("REPRO_JOURNAL_DIR", "")
    wrap, retry, journal = (lambda client: client), None, None
    if faults:
        from repro.resilience.faults import FaultClock, FaultPlan, FaultyClient
        from repro.resilience.retry import RetryPolicy

        plan = FaultPlan.parse(faults, seed=BENCH_LAB_CONFIG.seed)
        wrap = lambda client: FaultyClient(client, plan)  # noqa: E731
        retry = RetryPolicy(seed=BENCH_LAB_CONFIG.seed, clock=FaultClock())
    if journal_dir:
        journal = os.path.join(journal_dir, f"{label}.journal.jsonl")
    return wrap, retry, journal
