"""Ablation — ICL accuracy vs the simulated model's knowledge level.

Design-choice check for the LLM substitution (DESIGN.md): the simulator's
per-task ability parameters must map monotonically onto measured protocol
accuracy, i.e. the ICL pipeline (prompt render -> completion -> parse ->
metrics) neither adds nor hides systematic error.
"""

import os

from conftest import icl_resilience, instrumented, run_once

from repro.core.datasets import train_test_split_9_1
from repro.core.reporting import Table
from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import BehaviourProfile, SimulatedChatModel, TaskAbility, truth_table

ABILITIES = (0.5, 0.7, 0.9, 1.0)


@instrumented("ablation_llm_oracle")
def compute(lab):
    dataset = lab.dataset(1)
    split = train_test_split_9_1(dataset, seed=lab.config.seed)
    config = ICLConfig(seed=lab.config.seed)
    queries = build_icl_queries(dataset, config)
    truth = truth_table(dataset)
    rows = {}
    for ability in ABILITIES:
        profile = BehaviourProfile(
            name=f"oracle-{ability}",
            abilities={1: TaskAbility(p_pos=ability, p_neg=ability)},
            consistency=1.0,
        )
        client = SimulatedChatModel(profile, truth, 1, seed=lab.config.seed)
        wrap, retry, journal = icl_resilience(f"ablation_oracle_{ability}")
        result = run_icl_experiment(
            wrap(client), list(split.train), queries, PromptVariant.BASE,
            config, retry=retry, journal=journal,
        )
        rows[ability] = result.accuracy_mean
    return rows


def test_ablation_llm_oracle_monotonicity(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    table = Table(
        "Ablation — measured ICL accuracy vs configured oracle ability",
        ["ability", "measured accuracy"],
        precision=3,
    )
    for ability in ABILITIES:
        table.add_row(ability, rows[ability])
    table.show()
    table.save(os.path.join(results_dir, "ablation_llm_oracle.txt"))

    # Monotone within sampling noise, and a perfect oracle scores ~1.0.
    values = [rows[a] for a in ABILITIES]
    assert all(b >= a - 0.06 for a, b in zip(values, values[1:]))
    assert rows[1.0] > 0.97
