"""Table A7 — naive vs task-oriented adaptation on tasks 2 and 3.

Paper F1 scores:

    embedding    task2 naive  task2 task-oriented  task3 naive  task3 task-oriented
    GloVe        .9573        .9639                .9073        .9067
    W2V-Chem     .9596        .9507                .9122        .8779
    GloVe-Chem   .9586        .9725                .9125        .9051
    BioWordVec   .9605        .9595                .9061        .8938

Shape target: both adaptations produce competitive models; on the full
datasets the naive filter is at least as good as the task-oriented one for
most cells (the paper's Section 4 observation).
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table

PAPER_F1 = {
    ("GloVe", 2, "naive"): 0.9573, ("GloVe", 2, "task-oriented"): 0.9639,
    ("GloVe", 3, "naive"): 0.9073, ("GloVe", 3, "task-oriented"): 0.9067,
    ("W2V-Chem", 2, "naive"): 0.9596, ("W2V-Chem", 2, "task-oriented"): 0.9507,
    ("W2V-Chem", 3, "naive"): 0.9122, ("W2V-Chem", 3, "task-oriented"): 0.8779,
    ("GloVe-Chem", 2, "naive"): 0.9586, ("GloVe-Chem", 2, "task-oriented"): 0.9725,
    ("GloVe-Chem", 3, "naive"): 0.9125, ("GloVe-Chem", 3, "task-oriented"): 0.9051,
    ("BioWordVec", 2, "naive"): 0.9605, ("BioWordVec", 2, "task-oriented"): 0.9595,
    ("BioWordVec", 3, "naive"): 0.9061, ("BioWordVec", 3, "task-oriented"): 0.8938,
}


@instrumented("tableA7_adaptations")
def compute(lab):
    results = {}
    for embedding_name, task, adaptation in PAPER_F1:
        report, _ = lab.evaluate_random_forest(task, embedding_name, adaptation)
        results[(embedding_name, task, adaptation)] = report
    return results


def test_tableA7_adaptation_comparison(lab, results_dir, benchmark):
    results = run_once(benchmark, compute, lab)
    table = Table(
        "Table A7 — RF naive vs task-oriented on tasks 2 & 3 (paper F1 alongside)",
        ["embedding", "task", "adaptation", "precision", "recall", "F1", "paper F1"],
    )
    for key in sorted(results, key=lambda k: (k[1], k[0], k[2])):
        report = results[key]
        table.add_row(
            key[0], key[1], key[2], report.precision, report.recall,
            report.f1, PAPER_F1[key],
        )
    table.show()
    table.save(os.path.join(results_dir, "tableA7_adaptations.txt"))

    # All adapted cells are competitive classifiers.
    assert all(report.f1 > 0.5 for report in results.values())
    # Per the paper, naive is at least as good as task-oriented on average.
    naive_mean = sum(
        r.f1 for (e, t, a), r in results.items() if a == "naive"
    ) / 8
    task_mean = sum(
        r.f1 for (e, t, a), r in results.items() if a == "task-oriented"
    ) / 8
    assert naive_mean > task_mean - 0.05
