"""Table A4 — embedding vocabulary sizes and out-of-vocabulary rates.

Paper (47,701 unique ChEBI triple tokens):

    model        vocab      dims  OOV %
    GloVe        2,196,017  300   87.81
    W2V-Chem     151,563    300   71.18
    GloVe-Chem   2,276,964  300   64.22
    BioWordVec   2,347,646  200   47.79
    PubmedBERT   28,895     768   (WordPiece; no OOV)

Shape target: the generic model (GloVe) has the highest OOV rate on ChEBI
tokens, the domain/joined models progressively lower ones.
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table
from repro.core.tasks import positive_triples
from repro.text.tokenizer import ChemTokenizer

PAPER = {
    "GloVe": (2_196_017, 300, 87.81),
    "W2V-Chem": (151_563, 300, 71.18),
    "GloVe-Chem": (2_276_964, 300, 64.22),
    "BioWordVec": (2_347_646, 200, 47.79),
}


@instrumented("tableA4_oov")
def compute(lab):
    tokenizer = ChemTokenizer()
    tokens = set()
    for triple in positive_triples(lab.ontology):
        tokens.update(tokenizer(triple.subject_name))
        tokens.update(tokenizer(triple.object_name))
        tokens.update(tokenizer(triple.relation.label))
    rows = {}
    for name in PAPER:
        model = lab.embedding(name)
        n_oov, n_unique, fraction = model.vocabulary.oov_statistics(tokens)
        rows[name] = (len(model.vocabulary), model.dim, 100.0 * fraction)
    rows["_n_tokens"] = (len(tokens), 0, 0.0)
    return rows


def test_tableA4_oov_statistics(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    n_tokens = rows.pop("_n_tokens")[0]
    table = Table(
        f"Table A4 — vocab/dims/OOV over {n_tokens} unique triple tokens "
        "(paper: 47,701 tokens)",
        ["model", "vocab", "dims", "OOV %", "paper vocab", "paper OOV %"],
        precision=1,
    )
    for name, (vocab_size, dims, oov) in rows.items():
        paper_vocab, _, paper_oov = PAPER[name]
        table.add_row(name, vocab_size, dims, oov, paper_vocab, paper_oov)
    table.show()
    table.save(os.path.join(results_dir, "tableA4_oov.txt"))

    # OOV ordering: generic worst, chem/joined models better (paper shape).
    assert rows["GloVe"][2] > rows["W2V-Chem"][2]
    assert rows["GloVe"][2] > rows["GloVe-Chem"][2]
    assert rows["GloVe-Chem"][2] <= rows["W2V-Chem"][2] + 5.0
