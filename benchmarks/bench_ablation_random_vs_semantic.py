"""Ablation — random vs semantic embeddings as training data grows.

The paper's Table 3a inversion (random embeddings beating semantic ones for
unadapted forests) is a large-training-set memorisation effect: with ~279k
triples the forest can memorise random token signatures, and the paper's
own Figure 3 shows random-embedding models degrading fastest as data
shrinks.  This ablation regenerates the *mechanism* at reachable scale: the
gap between the random and semantic (W2V-Chem) forests must close
monotonically-ish as training size grows, because only the random model
gains from additional memorisable examples once the semantic signal is
saturated.
"""

import os

from conftest import instrumented, run_once

from repro.core.paradigms import RandomForestParadigm
from repro.core.comparison import evaluate_paradigm
from repro.core.reporting import Table
from repro.core.experiment import subsample
from repro.ml.forest import RandomForestConfig

TRAIN_SIZES = (300, 1_000, 3_000)


@instrumented("ablation_random_vs_semantic")
def compute(lab):
    split = lab.ml_split(1)
    test = list(split.test)
    rows = {}
    for size in TRAIN_SIZES:
        train = list(subsample(split.train, size, seed=size))
        for embedding_name in ("Random", "W2V-Chem"):
            paradigm = RandomForestParadigm(
                lab.embedding(embedding_name),
                config=RandomForestConfig(
                    n_estimators=20, max_depth=lab.config.rf_max_depth,
                    seed=lab.config.seed,
                ),
                name=embedding_name,
            ).fit(train)
            rows[(size, embedding_name)] = evaluate_paradigm(paradigm, test).f1
    return rows


def test_ablation_random_vs_semantic_scaling(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    table = Table(
        "Ablation — F1 vs training size: random vs semantic embeddings (task 1)",
        ["train size", "Random", "W2V-Chem", "gap (semantic - random)"],
        precision=3,
    )
    gaps = []
    for size in TRAIN_SIZES:
        random_f1 = rows[(size, "Random")]
        semantic_f1 = rows[(size, "W2V-Chem")]
        gaps.append(semantic_f1 - random_f1)
        table.add_row(size, random_f1, semantic_f1, gaps[-1])
    table.show()
    table.save(os.path.join(results_dir, "ablation_random_vs_semantic.txt"))

    # The random model improves with data...
    assert rows[(TRAIN_SIZES[-1], "Random")] > rows[(TRAIN_SIZES[0], "Random")]
    # ...and gains more from extra data than the semantic model does, so the
    # semantic advantage shrinks (the paper's large-data inversion mechanism).
    assert gaps[-1] < gaps[0] + 0.02
