"""Ablation — structure-only (TransE) vs text-feature (RF) curation.

Beyond the paper: its introduction situates curation within the
link-prediction literature, so a natural question is how much of the
curation signal lives in graph *structure* versus entity *nomenclature*.
TransE learns from training edges alone (no names); the Random Forest sees
only names (no graph).  On a sparse ontology with many rarely-connected
entities, the text models should dominate — which is the implicit premise
of the paper's NLP-centric design.
"""

import os

import numpy as np

from conftest import instrumented, run_once

from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import RandomForestParadigm
from repro.core.reporting import Table
from repro.kg.transe import TransE, TransEConfig
from repro.ml.forest import RandomForestConfig


@instrumented("ablation_structure_vs_text")
def compute(lab):
    rows = {}
    for task in (1, 2, 3):
        split = lab.ml_split(task)
        train = list(split.train)
        test = list(split.test)
        gold = np.array([t.label for t in test])

        transe = TransE(
            TransEConfig(dim=32, epochs=100, norm=2, seed=lab.config.seed)
        ).fit(train)
        transe_acc = float((transe.predict(test) == gold).mean())

        report, _ = lab.evaluate_random_forest(task, "W2V-Chem", "naive")
        rows[task] = (transe_acc, report.accuracy)
    return rows


def test_ablation_structure_vs_text(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    table = Table(
        "Ablation — accuracy of structure-only TransE vs text-feature RF",
        ["task", "TransE (structure)", "RF W2V-Chem (text)"],
        precision=3,
    )
    for task, (transe_acc, rf_acc) in rows.items():
        table.add_row(task, transe_acc, rf_acc)
    table.show()
    table.save(os.path.join(results_dir, "ablation_structure_vs_text.txt"))

    # Names carry the curation signal on this sparse ontology: the text
    # models win on average (per-task gaps can be thin on task 3, where
    # sibling corruptions are nearly structure-neutral for both).
    mean_transe = np.mean([transe for transe, _ in rows.values()])
    mean_rf = np.mean([rf for _, rf in rows.values()])
    assert mean_rf > mean_transe, (
        f"text ({mean_rf:.3f}) should beat structure ({mean_transe:.3f})"
    )
