"""Table 4 — fine-tuned PubmedBERT on the three tasks (8:1:1 split).

Paper results (496k training triples, lr 1e-4, 3 epochs):

    task   accuracy  precision  recall  F1
    1      .9565     .9798      .9319   .9552
    2      .9840     .9931      .9749   .9839
    3      .8723     .9240      .8124   .8646

Shape targets: task 2 is the fine-tuned model's best task, task 3 its worst
(Section 3.4); overall performance is on par with (or slightly below) the
strongest Random-Forest cells.
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table

PAPER = {
    1: (0.9565, 0.9798, 0.9319, 0.9552),
    2: (0.9840, 0.9931, 0.9749, 0.9839),
    3: (0.8723, 0.9240, 0.8124, 0.8646),
}


@instrumented("table4_finetune")
def compute(lab):
    return {task: lab.evaluate_fine_tuned(task) for task in (1, 2, 3)}


def test_table4_fine_tuned_pubmedbert(lab, results_dir, benchmark):
    reports = run_once(benchmark, compute, lab)
    table = Table(
        "Table 4 — fine-tuned mini-BERT (paper PubmedBERT values alongside)",
        ["task", "accuracy", "precision", "recall", "F1",
         "paper acc", "paper F1"],
    )
    for task, report in reports.items():
        table.add_row(
            f"task {task}", report.accuracy, report.precision,
            report.recall, report.f1, PAPER[task][0], PAPER[task][3],
        )
    table.show()
    table.save(os.path.join(results_dir, "table4_finetune.txt"))

    # Better than chance on all tasks; task 2 the best, task 3 the worst.
    assert all(report.accuracy > 0.55 for report in reports.values())
    assert reports[2].f1 >= reports[1].f1 - 0.02
    assert reports[3].f1 <= reports[2].f1
