"""Table 3b — Random Forest + naive adaptation on tasks 2 and 3.

Paper F1 scores:

    embedding    task 2   task 3
    Random       .9581    .9042
    GloVe        .9573    .9073
    W2V-Chem     .9596    .9122
    GloVe-Chem   .9586    .9125
    BioWordVec   .9605    .9061
    PubmedBERT   .9822    .9060

Shape targets: task 2 is the easiest of the three tasks for the ML
paradigm and task 3 the hardest (paper Section 3.3).
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table
from repro.embeddings.registry import MODEL_NAMES

PAPER_F1 = {
    ("Random", 2): 0.9581, ("Random", 3): 0.9042,
    ("GloVe", 2): 0.9573, ("GloVe", 3): 0.9073,
    ("W2V-Chem", 2): 0.9596, ("W2V-Chem", 3): 0.9122,
    ("GloVe-Chem", 2): 0.9586, ("GloVe-Chem", 3): 0.9125,
    ("BioWordVec", 2): 0.9605, ("BioWordVec", 3): 0.9061,
    ("PubmedBERT", 2): 0.9822, ("PubmedBERT", 3): 0.9060,
}


def adaptation_for(embedding_name):
    # The paper applies no token adaptation to contextual embeddings.
    return "none" if embedding_name == "PubmedBERT" else "naive"


@instrumented("table3b_rf_tasks23")
def compute(lab):
    results = {}
    for task in (2, 3):
        for embedding_name in MODEL_NAMES:
            report, _ = lab.evaluate_random_forest(
                task, embedding_name, adaptation_for(embedding_name)
            )
            results[(embedding_name, task)] = report
    return results


def test_table3b_random_forest_tasks23(lab, results_dir, benchmark):
    results = run_once(benchmark, compute, lab)
    table = Table(
        "Table 3b — RF + naive adaptation on tasks 2 & 3 (paper F1 alongside)",
        ["embedding", "task", "precision", "recall", "F1", "paper F1"],
    )
    for (embedding_name, task), report in results.items():
        table.add_row(
            embedding_name, task, report.precision, report.recall,
            report.f1, PAPER_F1[(embedding_name, task)],
        )
    table.show()
    table.save(os.path.join(results_dir, "table3b_rf_tasks23.txt"))

    mean_f1 = {
        task: sum(r.f1 for (e, t), r in results.items() if t == task) / 6
        for task in (2, 3)
    }
    # Task-difficulty ordering: task 2 easier than task 3 for ML models.
    assert mean_f1[2] > mean_f1[3]
