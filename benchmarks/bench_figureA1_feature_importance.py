"""Figure A1 — Random-Forest feature-importance patterns by component.

The paper's pivotal diagnostic (Section 2.7): without adaptation, forests
on semantic embeddings put little importance on the *head* (subject)
component, while forests on random embeddings attend to it; adaptations
re-balance attention toward heads for the semantic models.  This bench
regenerates the subject/relation/object importance shares for every
(embedding, adaptation) cell of task 1.
"""

import os

from conftest import instrumented, run_once

from repro.adaptation.analysis import component_attention
from repro.core.reporting import Table

CELLS = [
    ("Random", "none"),
    ("Random", "naive"),
    ("GloVe", "none"),
    ("GloVe", "naive"),
    ("GloVe", "task-oriented"),
    ("W2V-Chem", "none"),
    ("W2V-Chem", "naive"),
    ("W2V-Chem", "task-oriented"),
    ("BioWordVec", "none"),
    ("BioWordVec", "naive"),
    ("BioWordVec", "task-oriented"),
    ("GloVe-Chem", "none"),
    ("GloVe-Chem", "naive"),
    ("GloVe-Chem", "task-oriented"),
]


@instrumented("figureA1_feature_importance")
def compute(lab):
    attention = {}
    for embedding_name, adaptation in CELLS:
        _, forest = lab.trained_forest(1, embedding_name, adaptation)
        attention[(embedding_name, adaptation)] = component_attention(
            forest, lab.embedding(embedding_name).dim
        )
    return attention


def test_figureA1_component_attention(lab, results_dir, benchmark):
    attention = run_once(benchmark, compute, lab)
    table = Table(
        "Figure A1 — share of RF importance per triple component (task 1)",
        ["embedding", "adaptation", "subject", "relation", "object"],
        precision=3,
    )
    for (embedding_name, adaptation), shares in attention.items():
        table.add_row(
            embedding_name, adaptation,
            shares["subject"], shares["relation"], shares["object"],
        )
    table.show()
    table.save(os.path.join(results_dir, "figureA1_feature_importance.txt"))

    for shares in attention.values():
        assert abs(sum(shares.values()) - 1.0) < 1e-6
    # Entity components carry most of the signal: the relation block is
    # uninformative for task 1 (negatives preserve the relation type).
    for (embedding_name, adaptation), shares in attention.items():
        assert shares["relation"] < 0.5
