"""Table A6 — LSTM classifiers on task 1 per embedding model.

Paper F1 scores (LSTM, task 1):

    Random .9516  GloVe .9559  W2V-Chem .9496  GloVe-Chem .9538
    BioWordVec .9636

The paper's takeaway (Section 3.3): LSTM performance is on par with Random
Forests, so the RF results carry the narrative.  Shape targets here: every
LSTM beats chance clearly and lands within a band of the corresponding RF.
"""

import os

from conftest import instrumented, run_once

from repro.core.reporting import Table

PAPER_F1 = {
    "Random": 0.9516,
    "GloVe": 0.9559,
    "W2V-Chem": 0.9496,
    "GloVe-Chem": 0.9538,
    "BioWordVec": 0.9636,
}


@instrumented("tableA6_lstm")
def compute(lab):
    results = {}
    for embedding_name in PAPER_F1:
        report, _ = lab.evaluate_lstm(1, embedding_name, "none")
        results[embedding_name] = report
    return results


def test_tableA6_lstm_task1(lab, results_dir, benchmark):
    results = run_once(benchmark, compute, lab)
    table = Table(
        "Table A6 — LSTM on task 1 (paper F1 alongside)",
        ["embedding", "precision", "recall", "F1", "paper F1"],
    )
    for embedding_name, report in results.items():
        table.add_row(
            embedding_name, report.precision, report.recall, report.f1,
            PAPER_F1[embedding_name],
        )
    table.show()
    table.save(os.path.join(results_dir, "tableA6_lstm.txt"))

    for embedding_name, report in results.items():
        assert report.f1 > 0.55, f"{embedding_name} LSTM should beat chance"
    # LSTMs roughly on par with forests (paper Section 3.3): compare means.
    rf_mean = sum(
        lab.evaluate_random_forest(1, name, "none")[0].f1 for name in PAPER_F1
    ) / len(PAPER_F1)
    lstm_mean = sum(report.f1 for report in results.values()) / len(results)
    assert abs(lstm_mean - rf_mean) < 0.15
