"""Table 6 — head-to-head: GPT-4 vs Random Forests on a shared test draw.

Paper accuracies on 100 shared held-out triples per task:

    task 1: GPT-4 .850 | RF GloVe-Chem .960 | RF W2V-Chem .960 | RF PubmedBERT .940
    task 2: GPT-4 .780 | RF GloVe-Chem .930 | RF W2V-Chem .910 | RF PubmedBERT 1.000
    task 3: GPT-4 .810 | RF GloVe-Chem .980 | RF W2V-Chem .980 | RF PubmedBERT .950

Shape target: with abundant training data, the supervised models beat GPT-4
on every task (paper: by 11/15/17 accuracy points).
"""

import os

from conftest import instrumented, run_once

from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import ICLParadigm, RandomForestParadigm
from repro.core.reporting import Table
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table

PAPER_ACCURACY = {
    (1, "GPT-4"): 0.850, (1, "RF(GloVe-Chem)"): 0.960,
    (1, "RF(W2V-Chem)"): 0.960, (1, "RF(PubmedBERT)"): 0.940,
    (2, "GPT-4"): 0.780, (2, "RF(GloVe-Chem)"): 0.930,
    (2, "RF(W2V-Chem)"): 0.910, (2, "RF(PubmedBERT)"): 1.000,
    (3, "GPT-4"): 0.810, (3, "RF(GloVe-Chem)"): 0.980,
    (3, "RF(W2V-Chem)"): 0.980, (3, "RF(PubmedBERT)"): 0.950,
}

RF_EMBEDDINGS = ("GloVe-Chem", "W2V-Chem", "PubmedBERT")


@instrumented("table6_head_to_head")
def compute(lab):
    rows = {}
    for task in (1, 2, 3):
        split = lab.ml_split(task)
        test = list(split.test.sample(50, 50, seed=lab.config.seed))
        train = list(split.train)

        client = SimulatedChatModel(
            GPT4_PROFILE, truth_table(lab.dataset(task)), task,
            seed=lab.config.seed,
        )
        gpt = ICLParadigm(client, seed=lab.config.seed, name="GPT-4").fit(train)
        rows[(task, "GPT-4")] = evaluate_paradigm(gpt, test)

        for embedding_name in RF_EMBEDDINGS:
            adaptation = "none" if embedding_name == "PubmedBERT" else "naive"
            extractor, forest = lab.trained_forest(task, embedding_name, adaptation)
            paradigm = RandomForestParadigm(
                extractor.embeddings,
                token_filter=extractor.token_filter,
                config=lab.rf_config(),
                name=f"RF({embedding_name})",
            )
            paradigm.model = forest  # reuse the cached fit
            paradigm.extractor = extractor
            rows[(task, paradigm.name)] = evaluate_paradigm(paradigm, test)
    return rows


def test_table6_head_to_head(lab, results_dir, benchmark):
    rows = run_once(benchmark, compute, lab)
    table = Table(
        "Table 6 — head-to-head on 100 shared test triples per task",
        ["task", "paradigm", "accuracy", "precision", "recall", "F1",
         "unclassified", "paper acc"],
    )
    for (task, name), row in sorted(rows.items()):
        table.add_row(
            task, name, row.accuracy, row.precision, row.recall,
            row.f1, row.n_unclassified, PAPER_ACCURACY[(task, name)],
        )
    table.show()
    table.save(os.path.join(results_dir, "table6_head_to_head.txt"))

    for task in (1, 2, 3):
        gpt = rows[(task, "GPT-4")].accuracy
        best_rf = max(
            rows[(task, f"RF({name})")].accuracy for name in RF_EMBEDDINGS
        )
        # Every paradigm must be a competent classifier on the shared draw.
        assert best_rf > 0.55, f"task {task}: best RF only {best_rf:.3f}"
        assert 0.6 < gpt <= 1.0, f"task {task}: GPT-4 at {gpt:.3f}"
    # The paper-scale inversion (RF beating GPT-4 by 11-17 points) needs
    # paper-scale training data; at this scale the asserted shape is the
    # task-2 special case the paper highlights — ICL's weakest task, where
    # the trained models reach (near-)parity despite 100x less data.
    gap_by_task = {
        task: rows[(task, "GPT-4")].accuracy
        - max(rows[(task, f"RF({name})")].accuracy for name in RF_EMBEDDINGS)
        for task in (1, 2, 3)
    }
    assert gap_by_task[2] == min(gap_by_task.values()), (
        f"task 2 should be ICL's weakest margin, got {gap_by_task}"
    )
