"""Table A5 — the 50 most frequent tokens in head and tail entities.

The paper's census motivates the whole adaptation line of work: head
entities are dominated by short locant/stereo tokens (2, 3, 4, 1, 5, 6, yl,
6r, 2s, ...) while tail entities carry more semantic class tokens (acid,
metabolite, compound, ...).  The synthetic grammar must reproduce that
asymmetry.
"""

import os

from conftest import instrumented, run_once

from repro.adaptation.analysis import short_token_share, token_frequency_census
from repro.core.reporting import Table
from repro.core.tasks import positive_triples

#: Representative paper tokens for the side-by-side listing.
PAPER_HEAD_TOP = "2 3 4 1 5 6 yl n d methyl hydroxymethyl 6r 2s 2r 3r beta".split()
PAPER_TAIL_TOP = "acid 1 metabolite 3 d 2 compound 4 beta amino".split()


@instrumented("tableA5_tokens")
def compute(lab):
    positives = positive_triples(lab.ontology)
    census = token_frequency_census(positives, top_k=50)
    shares = short_token_share(census)
    return census, shares


def test_tableA5_token_census(lab, results_dir, benchmark):
    census, shares = run_once(benchmark, compute, lab)
    table = Table(
        "Table A5 — top tokens in head/tail entities (paper heads: "
        + " ".join(PAPER_HEAD_TOP[:8]) + " ...)",
        ["rank", "head token", "count", "tail token", "count"],
        precision=0,
    )
    for rank in range(20):
        head_token, head_count = census["head"][rank]
        tail_token, tail_count = census["tail"][rank]
        table.add_row(rank + 1, head_token, head_count, tail_token, tail_count)
    table.show()
    table.save(os.path.join(results_dir, "tableA5_tokens.txt"))

    # The asymmetry driving the adaptation hypothesis: the share of short
    # (<= 2 chars) token mass is higher in heads than tails.
    assert shares["head"] > shares["tail"]
    # Locants figure prominently among head tokens.
    head_top = [token for token, _ in census["head"][:15]]
    assert sum(token.isdigit() for token in head_top) >= 4
    # Tail top tokens include class-like words.
    tail_top = {token for token, _ in census["tail"][:25]}
    assert tail_top & {"acid", "metabolite", "compound", "agent", "role",
                       "inhibitor", "entity"}
