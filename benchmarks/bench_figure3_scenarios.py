"""Figure 3 / A2 — F1 under the five data-availability scenarios, tasks 1-3.

The paper trains ML and FT models on successively smaller, more imbalanced
training sets (S1: 9:1 split, balanced ... S5: 0.5:1 split, 1:8 imbalance)
against a constant balanced test set, with GPT-4's flat ICL performance as
the reference line.  Reported shape:

* every trained model degrades from S1 to S5;
* random-embedding forests degrade *fastest*;
* GPT-4's flat line overtakes ML/FT in the scarce scenarios for tasks 1
  and 3, but never for task 2 in the paper's full-scale setting (at this
  reduced scale the trained models start lower, so the crossover happens
  earlier — see EXPERIMENTS.md);
* fine-tuning collapses hardest on task 3.
"""

import os

from conftest import instrumented, run_once

from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import FineTuneParadigm, ICLParadigm, RandomForestParadigm
from repro.core.reporting import Table
from repro.bert.finetune import FineTuneConfig
from repro.core.scenarios import SCENARIOS, build_scenario_split
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table
from repro.ml.forest import RandomForestConfig

SUBSET_FRACTION = 0.35
#: The paper fine-tunes for 3 epochs; scenario fits follow suit (the
#: table-4 bench uses the Lab's longer schedule for its headline numbers).
FT_EPOCHS = 3

ML_MODELS = (
    ("Random", "naive"),
    ("GloVe-Chem", "naive"),
    ("PubmedBERT", "none"),
)


@instrumented("figure3_scenarios")
def compute(lab):
    results = {}
    rf_config = RandomForestConfig(
        n_estimators=20, max_depth=lab.config.rf_max_depth, seed=lab.config.seed
    )
    for task in (1, 2, 3):
        dataset = lab.dataset(task)
        truth = truth_table(dataset)
        for scenario in SCENARIOS:
            split = build_scenario_split(
                dataset, scenario, subset_fraction=SUBSET_FRACTION,
                seed=lab.config.seed,
            )
            train = list(split.train)
            test = list(split.test)
            for embedding_name, adaptation in ML_MODELS:
                paradigm = RandomForestParadigm(
                    lab.embedding(embedding_name),
                    token_filter=lab.adaptation_filter(adaptation, embedding_name),
                    config=rf_config,
                    name=f"RF({embedding_name})",
                ).fit(train)
                results[(task, scenario.name, paradigm.name)] = evaluate_paradigm(
                    paradigm, test
                )
            ft_config = FineTuneConfig(
                epochs=FT_EPOCHS,
                learning_rate=lab.config.ft_learning_rate,
                seed=lab.config.seed,
            )
            ft = FineTuneParadigm(lab.bert, ft_config).fit(train)
            results[(task, scenario.name, "FT")] = evaluate_paradigm(ft, test)
        # GPT-4 does not use the training data: one flat reference per task.
        gpt_split = build_scenario_split(
            dataset, SCENARIOS[0], subset_fraction=SUBSET_FRACTION,
            seed=lab.config.seed,
        )
        client = SimulatedChatModel(GPT4_PROFILE, truth, task, seed=lab.config.seed)
        gpt = ICLParadigm(client, seed=lab.config.seed, name="GPT-4").fit(
            list(gpt_split.train)
        )
        results[(task, "flat", "GPT-4")] = evaluate_paradigm(
            gpt, list(gpt_split.test)
        )
    return results


def test_figure3_data_availability_scenarios(lab, results_dir, benchmark):
    results = run_once(benchmark, compute, lab)
    model_names = ["RF(Random)", "RF(GloVe-Chem)", "RF(PubmedBERT)", "FT"]
    for task in (1, 2, 3):
        table = Table(
            f"Figure 3 (task {task}) — F1 by scenario; GPT-4 reference is flat",
            ["scenario"] + model_names + ["GPT-4"],
            precision=3,
        )
        gpt_f1 = results[(task, "flat", "GPT-4")].f1
        for scenario in SCENARIOS:
            table.add_row(
                scenario.describe(),
                *(results[(task, scenario.name, m)].f1 for m in model_names),
                gpt_f1,
            )
        table.show()
        table.save(os.path.join(results_dir, f"figure3_task{task}_scenarios.txt"))

    for task in (1, 2, 3):
        for model in model_names:
            s1 = results[(task, "S1", model)].f1
            s5 = results[(task, "S5", model)].f1
            # Scarce, imbalanced training data must hurt every trained model.
            assert s5 < s1 + 0.02, f"task {task} {model}: S5 {s5} !< S1 {s1}"
        # GPT-4's flat line beats the trained models in the most extreme
        # scenario for tasks 1 and 3 (the paper's crossover finding).
        if task in (1, 3):
            gpt_f1 = results[(task, "flat", "GPT-4")].f1
            trained_s5 = max(results[(task, "S5", m)].f1 for m in model_names)
            assert gpt_f1 > trained_s5 - 0.05
