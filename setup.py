"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file exists so
``python setup.py develop`` / legacy editable installs work on
environments without the ``wheel`` package.
"""

from setuptools import setup

setup()
